// The adaptive portfolio router's deterministic proof layer (ISSUE 9):
//
//  * feature-extraction pins — op/size/density/gap classes and the bucket
//    key are part of the routing contract, so they are pinned literally;
//  * the replayable decision harness — a recorded stream of (features,
//    per-member outcome) pairs driven through route::replay with the
//    resulting transcript pinned verbatim, so any routing-policy change
//    shows up as a readable test diff;
//  * snapshot round-trips (persistence across restarts and portfolio
//    reordering);
//  * differential proof that routing never changes answers: with one
//    worker the portfolio race tries members in index order with
//    per-(member, attempt) seeds, and routed dispatch preserves those
//    seeds, so routed solves are byte-identical to full-race solves across
//    every fuzz op family — including when the routed member fails and the
//    service falls back to racing the rest;
//  * solution-chained pipelines — stage N+1 warm-starts from stage N's
//    witness, matches the cold path's verdicts, and route.chain.*
//    telemetry counts exactly once per hop.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "route/features.hpp"
#include "route/replay.hpp"
#include "route/router.hpp"
#include "service/service.hpp"
#include "strqubo/constraint.hpp"
#include "strqubo/verify.hpp"
#include "telemetry/telemetry.hpp"

namespace qsmt {
namespace {

using route::DensityClass;
using route::GapClass;
using route::JobFeatures;
using route::RecordedOutcome;
using route::ReplayStep;
using route::RouteAction;
using route::Router;
using route::RouterOptions;

// ---------------------------------------------------------------------------
// Features

TEST(RouterFeatures, EqualityBucketKeyPinned) {
  const JobFeatures f = route::extract_features(strqubo::Equality{"abc"});
  EXPECT_EQ(f.op, "equality");
  EXPECT_EQ(f.num_variables, 21u);  // 7 bits per character.
  EXPECT_EQ(f.size_bucket, 5u);     // bit_width(21)
  EXPECT_EQ(f.density, DensityClass::kDiagonal);
  EXPECT_EQ(f.gap, GapClass::kUnit);
  EXPECT_EQ(f.bucket_key(), "equality/v5/diag/unit");
}

TEST(RouterFeatures, DensityClasses) {
  EXPECT_EQ(route::density_class_of(strqubo::Equality{"ab"}),
            DensityClass::kDiagonal);
  EXPECT_EQ(route::density_class_of(strqubo::Reverse{"ab"}),
            DensityClass::kDiagonal);
  // Position one-hots / mirrored-bit gadgets are quadratic-penalty models.
  EXPECT_EQ(route::density_class_of(strqubo::Includes{"abab", "ab"}),
            DensityClass::kQuadratic);
  EXPECT_EQ(route::density_class_of(strqubo::Palindrome{3}),
            DensityClass::kQuadratic);
  // Regex density depends on whether the pattern uses character classes.
  EXPECT_EQ(route::density_class_of(strqubo::RegexMatch{"a+b", 3}),
            DensityClass::kDiagonal);
  EXPECT_EQ(route::density_class_of(strqubo::RegexMatch{"[ac]b", 2}),
            DensityClass::kQuadratic);
  // The only two formulations that allocate ancilla variables.
  EXPECT_EQ(route::density_class_of(strqubo::NotContains{3, "ab"}),
            DensityClass::kAncilla);
  EXPECT_EQ(route::density_class_of(strqubo::BoundedLength{3, 1, 2}),
            DensityClass::kAncilla);
}

TEST(RouterFeatures, GapClassesFromConformanceFloors) {
  // Pinned against the conformance registry's proven per-op minimum
  // gap_floor (positive cases only): index_of/char_at hold 2A floors,
  // palindrome's length-1 case is gapless, bounded_length's soft selector
  // floors at 0.2, and most generating formulations sit at A.
  EXPECT_EQ(route::gap_class_of("equality"), GapClass::kUnit);
  EXPECT_EQ(route::gap_class_of("includes"), GapClass::kUnit);
  EXPECT_EQ(route::gap_class_of("index-of"), GapClass::kWide);
  EXPECT_EQ(route::gap_class_of("char-at"), GapClass::kWide);
  EXPECT_EQ(route::gap_class_of("palindrome"), GapClass::kFractional);
  EXPECT_EQ(route::gap_class_of("bounded-length"), GapClass::kFractional);
  // Ops without a registry entry default to the common unit class.
  EXPECT_EQ(route::gap_class_of("no-such-op"), GapClass::kUnit);
}

TEST(RouterFeatures, SizeBuckets) {
  EXPECT_EQ(route::size_bucket_of(0), 0u);
  EXPECT_EQ(route::size_bucket_of(1), 1u);
  EXPECT_EQ(route::size_bucket_of(21), 5u);
  EXPECT_EQ(route::size_bucket_of(64), 7u);
}

// ---------------------------------------------------------------------------
// Decision mechanics

RouterOptions test_options(std::size_t min_observations = 2,
                           std::size_t explore_period = 4) {
  RouterOptions options;
  options.min_observations = min_observations;
  options.min_win_rate = 0.6;
  options.explore_period = explore_period;
  return options;
}

JobFeatures equality_features() {
  return route::extract_features(strqubo::Equality{"abc"});
}

TEST(RouterDecisions, FreshBucketRaces) {
  Router router({"sa-fast", "sa-deep"}, test_options());
  const route::RouteDecision decision = router.decide(equality_features());
  EXPECT_EQ(decision.action, RouteAction::kRace);
  EXPECT_EQ(decision.reason, route::RaceReason::kLowConfidence);
  EXPECT_EQ(decision.bucket, "equality/v5/diag/unit");
}

TEST(RouterDecisions, ConfidentBucketRoutesToBestMember) {
  Router router({"sa-fast", "sa-deep"}, test_options());
  const JobFeatures f = equality_features();
  router.decide(f);  // Creates the bucket.
  router.record_win(f.bucket_key(), 1, /*was_race=*/true);
  const route::RouteDecision decision = router.decide(f);
  EXPECT_EQ(decision.action, RouteAction::kRoute);
  EXPECT_EQ(decision.member, 1u);
}

TEST(RouterDecisions, ExploreRacesEveryPeriod) {
  Router router({"sa-fast", "sa-deep"}, test_options(1, 3));
  const JobFeatures f = equality_features();
  router.decide(f);
  router.record_win(f.bucket_key(), 0, /*was_race=*/true);
  // Bucket ordinals 1..5: ordinal 3 hits the explore period.
  std::vector<route::RaceReason> reasons;
  for (int i = 0; i < 5; ++i) reasons.push_back(router.decide(f).reason);
  EXPECT_EQ(reasons[0], route::RaceReason::kNone);
  EXPECT_EQ(reasons[1], route::RaceReason::kNone);
  EXPECT_EQ(reasons[2], route::RaceReason::kExplore);
  EXPECT_EQ(reasons[3], route::RaceReason::kNone);
  EXPECT_EQ(reasons[4], route::RaceReason::kNone);
}

TEST(RouterDecisions, FallbackLossesErodeRoutingClaim) {
  Router router({"sa-fast", "sa-deep"}, test_options(1, 0));
  const JobFeatures f = equality_features();
  router.decide(f);
  router.record_win(f.bucket_key(), 0, /*was_race=*/true);
  ASSERT_EQ(router.decide(f).action, RouteAction::kRoute);
  // Two fallbacks drop sa-fast's rate to 1/3 < 0.6: the race reopens.
  router.record_fallback(f.bucket_key(), 0);
  router.record_fallback(f.bucket_key(), 0);
  const route::RouteDecision decision = router.decide(f);
  EXPECT_EQ(decision.action, RouteAction::kRace);
  EXPECT_EQ(decision.reason, route::RaceReason::kLowConfidence);
}

TEST(RouterDecisions, TieBreaksToLowestIndex) {
  Router router({"sa-fast", "sa-deep"}, test_options(1, 0));
  const JobFeatures f = equality_features();
  router.decide(f);
  router.record_win(f.bucket_key(), 1, /*was_race=*/false);
  router.record_win(f.bucket_key(), 0, /*was_race=*/false);
  // Both members at rate 1.0: the lower index wins the tie (the same
  // order a single-worker race tries members in).
  const route::RouteDecision decision = router.decide(f);
  ASSERT_EQ(decision.action, RouteAction::kRoute);
  EXPECT_EQ(decision.member, 0u);
}

TEST(RouterDecisions, BucketCapRacesNovelShapes) {
  RouterOptions options = test_options(1, 0);
  options.max_buckets = 1;
  Router router({"sa-fast", "sa-deep"}, options);
  router.decide(equality_features());
  const route::RouteDecision decision =
      router.decide(route::extract_features(strqubo::Reverse{"abc"}));
  EXPECT_EQ(decision.action, RouteAction::kRace);
  EXPECT_EQ(router.stats().buckets, 1u);
}

// ---------------------------------------------------------------------------
// The replayable decision harness

TEST(RouterReplay, PinnedTranscript) {
  Router router({"sa-fast", "sa-deep"}, test_options(2, 4));
  std::vector<ReplayStep> stream;
  for (int i = 0; i < 10; ++i) {
    ReplayStep step;
    step.features = equality_features();
    // sa-fast wins everywhere except step 8's explore race, which makes
    // step 9's routed dispatch miss and fall back.
    step.outcome.winner = (i == 8 || i == 9) ? 1 : 0;
    stream.push_back(std::move(step));
  }
  const std::vector<route::ReplayedDecision> decisions =
      route::replay(router, stream);
  EXPECT_EQ(route::transcript(decisions, router),
            "#00 equality/v5/diag/unit race(low_confidence) winner=sa-fast\n"
            "#01 equality/v5/diag/unit route member=sa-fast hit\n"
            "#02 equality/v5/diag/unit route member=sa-fast hit\n"
            "#03 equality/v5/diag/unit route member=sa-fast hit\n"
            "#04 equality/v5/diag/unit race(explore) winner=sa-fast\n"
            "#05 equality/v5/diag/unit route member=sa-fast hit\n"
            "#06 equality/v5/diag/unit route member=sa-fast hit\n"
            "#07 equality/v5/diag/unit route member=sa-fast hit\n"
            "#08 equality/v5/diag/unit race(explore) winner=sa-deep\n"
            "#09 equality/v5/diag/unit route member=sa-fast miss "
            "winner=sa-deep\n");

  const route::RouterStats stats = router.stats();
  EXPECT_EQ(stats.decisions, 10u);
  EXPECT_EQ(stats.routed, 7u);
  EXPECT_EQ(stats.races_low_confidence, 1u);
  EXPECT_EQ(stats.races_explore, 2u);
  EXPECT_EQ(stats.fallbacks, 1u);
  EXPECT_EQ(stats.wins_recorded, 10u);
  EXPECT_EQ(stats.losses_recorded, 4u);
  EXPECT_EQ(stats.buckets, 1u);
}

TEST(RouterReplay, ReplayIsDeterministic) {
  std::vector<ReplayStep> stream;
  for (int i = 0; i < 20; ++i) {
    ReplayStep step;
    step.features = route::extract_features(
        i % 2 == 0 ? strqubo::Constraint(strqubo::Equality{"abc"})
                   : strqubo::Constraint(strqubo::Palindrome{3}));
    step.outcome.winner = i % 3 == 0 ? 1 : 0;
    stream.push_back(std::move(step));
  }
  Router a({"sa-fast", "sa-deep"}, test_options());
  Router b({"sa-fast", "sa-deep"}, test_options());
  EXPECT_EQ(route::transcript(route::replay(a, stream), a),
            route::transcript(route::replay(b, stream), b));
  EXPECT_EQ(a.save_snapshot(), b.save_snapshot());
}

TEST(RouterReplay, NoWinnerRaceDebitsEveryMember) {
  Router router({"sa-fast", "sa-deep"}, test_options());
  ReplayStep step;
  step.features = equality_features();
  step.outcome.winner = RecordedOutcome::kNoWinner;
  const auto decisions = route::replay(router, {step});
  EXPECT_EQ(route::transcript(decisions, router),
            "#00 equality/v5/diag/unit race(low_confidence) winner=none\n");
  EXPECT_EQ(router.stats().losses_recorded, 2u);
  EXPECT_EQ(router.stats().wins_recorded, 0u);
}

// ---------------------------------------------------------------------------
// Snapshots

TEST(RouterSnapshot, RoundTrips) {
  Router trained({"sa-fast", "sa-deep"}, test_options());
  std::vector<ReplayStep> stream;
  for (int i = 0; i < 12; ++i) {
    ReplayStep step;
    step.features = route::extract_features(
        i % 2 == 0 ? strqubo::Constraint(strqubo::Equality{"abc"})
                   : strqubo::Constraint(strqubo::Includes{"abab", "ab"}));
    step.outcome.winner = i % 4 == 0 ? 1 : 0;
    stream.push_back(std::move(step));
  }
  route::replay(trained, stream);

  const std::string snapshot = trained.save_snapshot();
  Router restored({"sa-fast", "sa-deep"}, test_options());
  ASSERT_TRUE(restored.load_snapshot(snapshot));
  EXPECT_EQ(restored.save_snapshot(), snapshot);
  EXPECT_EQ(restored.stats().buckets, trained.stats().buckets);
}

TEST(RouterSnapshot, ReorderedPortfolioRemapsByName) {
  Router trained({"sa-fast", "sa-deep"}, test_options(1, 0));
  const JobFeatures f = equality_features();
  trained.decide(f);
  trained.record_win(f.bucket_key(), 1, /*was_race=*/true);  // sa-deep wins.

  Router reordered({"sa-deep", "sa-fast"}, test_options(1, 0));
  ASSERT_TRUE(reordered.load_snapshot(trained.save_snapshot()));
  // sa-deep's win survives the reorder and now routes to index 0.
  const route::RouteDecision decision = reordered.decide(f);
  ASSERT_EQ(decision.action, RouteAction::kRoute);
  EXPECT_EQ(decision.member, 0u);
}

TEST(RouterSnapshot, UnknownMembersDropOnLoad) {
  Router trained({"sa-fast", "sa-deep"}, test_options(1, 0));
  const JobFeatures f = equality_features();
  trained.decide(f);
  trained.record_win(f.bucket_key(), 1, /*was_race=*/true);

  Router renamed({"sa-fast", "pimc-light"}, test_options(1, 0));
  ASSERT_TRUE(renamed.load_snapshot(trained.save_snapshot()));
  const std::vector<route::BucketRecord> table = renamed.table();
  ASSERT_EQ(table.size(), 1u);
  // sa-fast's loss survives; sa-deep's win has no home and is dropped.
  EXPECT_EQ(table[0].members[0].losses, 1u);
  EXPECT_EQ(table[0].members[1].wins, 0u);
}

TEST(RouterSnapshot, MalformedSnapshotsRejected) {
  Router router({"sa-fast", "sa-deep"}, test_options());
  EXPECT_FALSE(router.load_snapshot(""));
  EXPECT_FALSE(router.load_snapshot("garbage"));
  // A member line before any bucket line is structurally invalid.
  EXPECT_FALSE(
      router.load_snapshot("qsmt-router-snapshot v1\nmember sa-fast 1 2\n"));
  // A rejected load leaves the ledger untouched.
  EXPECT_EQ(router.stats().buckets, 0u);
}

// ---------------------------------------------------------------------------
// Routed solves are byte-identical to full-race solves

// The 12 differential-fuzz op families, one easy representative each.
std::vector<strqubo::Constraint> family_representatives() {
  return {
      strqubo::Equality{"abc"},
      strqubo::Concat{"ab", "c"},
      strqubo::SubstringMatch{3, "ab"},
      strqubo::Includes{"abcab", "ca"},
      strqubo::IndexOf{3, "b", 1},
      strqubo::Length{3, 2},
      strqubo::ReplaceAll{"aba", 'a', 'b'},
      strqubo::Replace{"aba", 'a', 'c'},
      strqubo::Reverse{"abc"},
      strqubo::Palindrome{3},
      strqubo::RegexMatch{"a+b", 3},
      strqubo::CharAt{3, 1, 'b'},
  };
}

/// A router pre-trained to dispatch every given constraint's bucket to
/// `member` (decide() first so the bucket exists, then credit the win).
std::shared_ptr<Router> warmed_router(
    const std::vector<std::string>& names,
    const std::vector<strqubo::Constraint>& cases, std::size_t member) {
  RouterOptions options;
  options.min_observations = 1;
  options.min_win_rate = 0.5;
  options.explore_period = 0;  // Determinism: never explore.
  auto router = std::make_shared<Router>(names, options);
  for (const strqubo::Constraint& c : cases) {
    const JobFeatures f = route::extract_features(c);
    router->decide(f);
    router->record_win(f.bucket_key(), member, /*was_race=*/true);
  }
  return router;
}

TEST(RouterDifferential, RoutedByteIdenticalToFullRaceAcrossFamilies) {
  const std::vector<strqubo::Constraint> cases = family_representatives();

  // One worker makes the race deterministic: members are tried in index
  // order, and per-(member, attempt) seeds do not depend on dispatch mode.
  service::ServiceOptions race_options;
  race_options.num_workers = 1;
  service::SolveService race_service(race_options);

  service::ServiceOptions routed_options;
  routed_options.num_workers = 1;
  routed_options.router =
      warmed_router(race_service.portfolio_names(), cases, 0);
  service::SolveService routed_service(routed_options);

  service::JobOptions job;
  job.seed = 0x5EED;
  const std::vector<service::JobResult> raced =
      race_service.solve_constraints(cases, job);
  const std::vector<service::JobResult> routed =
      routed_service.solve_constraints(cases, job);

  ASSERT_EQ(raced.size(), routed.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE("case " + std::to_string(i) + ": " +
                 strqubo::describe(cases[i]));
    EXPECT_EQ(routed[i].status, raced[i].status);
    EXPECT_EQ(routed[i].text, raced[i].text);
    EXPECT_EQ(routed[i].position, raced[i].position);
    EXPECT_EQ(routed[i].winner, raced[i].winner);
    EXPECT_EQ(raced[i].route, "");
    EXPECT_TRUE(routed[i].route == "routed" ||
                routed[i].route == "routed+fallback")
        << routed[i].route;
  }
  EXPECT_GE(routed_service.stats().jobs_routed, cases.size());
}

TEST(RouterDifferential, FallbackReplaysRaceByteIdentically) {
  // A portfolio whose first member always throws: routing to it must fall
  // back to the remaining members and still produce the full race's
  // verdict (same seeds — under one worker the race IS the fallback
  // order after the broken member drops out).
  auto broken_portfolio = [] {
    std::vector<service::PortfolioMember> portfolio;
    service::PortfolioMember broken;
    broken.name = "broken";
    broken.make = [](std::uint64_t, CancelToken)
        -> std::unique_ptr<anneal::Sampler> {
      throw std::runtime_error("sampler exploded");
    };
    portfolio.push_back(std::move(broken));
    portfolio.push_back(service::simulated_annealing_member("sa-fast"));
    return portfolio;
  };

  const strqubo::Constraint constraint = strqubo::Equality{"abc"};

  service::ServiceOptions race_options;
  race_options.num_workers = 1;
  race_options.portfolio = broken_portfolio();
  service::SolveService race_service(race_options);

  service::ServiceOptions routed_options;
  routed_options.num_workers = 1;
  routed_options.portfolio = broken_portfolio();
  routed_options.router =
      warmed_router({"broken", "sa-fast"}, {constraint}, 0);
  service::SolveService routed_service(routed_options);

  service::JobOptions job;
  job.seed = 0xFA11;
  const service::JobResult raced =
      race_service.submit(constraint, job).get();
  const service::JobResult routed =
      routed_service.submit(constraint, job).get();

  EXPECT_EQ(raced.status, smtlib::CheckSatStatus::kSat);
  EXPECT_EQ(routed.status, raced.status);
  EXPECT_EQ(routed.text, raced.text);
  EXPECT_EQ(routed.winner, raced.winner);
  EXPECT_EQ(routed.winner, "sa-fast");
  EXPECT_EQ(routed.route, "routed+fallback");
  EXPECT_EQ(routed_service.stats().route_fallbacks, 1u);

  // The ledger learned from the failure: a fallback loss against the
  // broken member plus the fallback winner's win.
  const route::RouterStats stats = routed_options.router->stats();
  EXPECT_EQ(stats.fallbacks, 1u);
  EXPECT_EQ(stats.wins_recorded, 2u);  // Warmup win + fallback win.
}

TEST(RouterDifferential, ServiceLearnsAndRoutesLive) {
  service::ServiceOptions options;
  options.num_workers = 1;
  RouterOptions router_options;
  router_options.min_observations = 2;
  router_options.min_win_rate = 0.5;
  router_options.explore_period = 0;
  options.router = std::make_shared<Router>(
      std::vector<std::string>{"sa-fast", "sa-deep"}, router_options);
  service::SolveService service(options);

  const strqubo::Constraint constraint = strqubo::Equality{"ab"};
  service::JobOptions job;
  job.seed = 0x11;

  // Job 1 races (fresh bucket) and trains the table; job 2 routes.
  const service::JobResult first = service.submit(constraint, job).get();
  EXPECT_EQ(first.route, "race:low_confidence");
  ASSERT_EQ(first.status, smtlib::CheckSatStatus::kSat);
  const service::JobResult second = service.submit(constraint, job).get();
  EXPECT_EQ(second.route, "routed");
  EXPECT_EQ(second.status, first.status);
  EXPECT_EQ(second.text, first.text);
  EXPECT_EQ(service.stats().jobs_routed, 1u);
}

TEST(RouterDifferential, ScriptJobsBypassRouter) {
  service::ServiceOptions options;
  options.num_workers = 1;
  options.router = std::make_shared<Router>(
      std::vector<std::string>{"sa-fast", "sa-deep"}, RouterOptions{});
  service::SolveService service(options);
  const service::JobResult result =
      service
          .submit_script(
              "(declare-const s String)(assert (= s \"ab\"))(check-sat)", {})
          .get();
  EXPECT_EQ(result.route, "");
  EXPECT_EQ(options.router->stats().decisions, 0u);
}

TEST(RouterDifferential, MismatchedRouterIgnored) {
  service::ServiceOptions options;
  options.num_workers = 1;
  // Three names against the default two-member portfolio: gated off.
  options.router = std::make_shared<Router>(
      std::vector<std::string>{"a", "b", "c"}, RouterOptions{});
  service::SolveService service(options);
  const service::JobResult result =
      service.submit(strqubo::Equality{"ab"}, {}).get();
  EXPECT_EQ(result.route, "");
  EXPECT_EQ(options.router->stats().decisions, 0u);
}

// ---------------------------------------------------------------------------
// Solution-chained pipelines

TEST(PipelineChaining, ChainsWarmStartsOncePerHop) {
  telemetry::reset();
  telemetry::set_mode(telemetry::Mode::kSummary);

  service::ServiceOptions options;
  options.num_workers = 1;
  service::SolveService service(options);

  // Three stages whose witnesses are all "ab": every hop chains.
  service::PipelineJob pipeline;
  pipeline.stages = {strqubo::Equality{"ab"}, strqubo::Concat{"a", "b"},
                     strqubo::Reverse{"ba"}};
  pipeline.options.seed = 0xC4A1;
  const service::PipelineResult result =
      service.submit_pipeline(std::move(pipeline)).get();

  ASSERT_EQ(result.stages.size(), 3u);
  EXPECT_TRUE(result.all_sat);
  for (const service::JobResult& stage : result.stages) {
    ASSERT_EQ(stage.status, smtlib::CheckSatStatus::kSat);
    ASSERT_TRUE(stage.text.has_value());
    EXPECT_EQ(*stage.text, "ab");
  }
  // Exactly once per hop: two hops, two chained warm starts.
  EXPECT_EQ(result.chained_warm_starts, 2u);
  const service::SolveService::Stats stats = service.stats();
  EXPECT_EQ(stats.pipelines, 1u);
  EXPECT_EQ(stats.chain_warm_starts, 2u);

  const telemetry::Snapshot snapshot = telemetry::registry().snapshot();
  const telemetry::CounterStat* warm =
      snapshot.counter("route.chain.warm_starts");
  ASSERT_NE(warm, nullptr);
  EXPECT_EQ(warm->value, 2u);
  const telemetry::CounterStat* stages = snapshot.counter("route.chain.stages");
  ASSERT_NE(stages, nullptr);
  EXPECT_EQ(stages->value, 3u);
  const telemetry::CounterStat* pipelines =
      snapshot.counter("route.chain.pipelines");
  ASSERT_NE(pipelines, nullptr);
  EXPECT_EQ(pipelines->value, 1u);

  telemetry::set_mode(telemetry::Mode::kOff);
  telemetry::reset();
}

TEST(PipelineChaining, ChainedPathMatchesColdPathVerdicts) {
  const std::vector<strqubo::Constraint> stages = {
      strqubo::Equality{"abc"}, strqubo::Reverse{"cba"},
      strqubo::ReplaceAll{"abc", 'c', 'a'}};

  service::ServiceOptions options;
  options.num_workers = 1;
  service::SolveService service(options);

  // Cold path: the same constraints as independent jobs. solve_constraints
  // derives stage seeds exactly like submit_pipeline (mix_seed(seed, i)),
  // so chaining is the only difference between the two runs.
  service::JobOptions job;
  job.seed = 0xC01D;
  const std::vector<service::JobResult> cold =
      service.solve_constraints(stages, job);

  service::PipelineJob pipeline;
  pipeline.stages = stages;
  pipeline.options.seed = 0xC01D;
  const service::PipelineResult chained =
      service.submit_pipeline(std::move(pipeline)).get();

  ASSERT_EQ(chained.stages.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    SCOPED_TRACE("stage " + std::to_string(i));
    ASSERT_EQ(cold[i].status, smtlib::CheckSatStatus::kSat);
    EXPECT_EQ(chained.stages[i].status, cold[i].status);
    // These ops have unique witnesses, so chaining cannot change them.
    EXPECT_EQ(chained.stages[i].text, cold[i].text);
  }
  EXPECT_TRUE(chained.all_sat);
}

TEST(PipelineChaining, WitnesslessHopRunsCold) {
  service::ServiceOptions options;
  options.num_workers = 1;
  service::SolveService service(options);

  // Includes yields a position, not a string: the hop after it has no
  // witness to chain and must run cold.
  service::PipelineJob pipeline;
  pipeline.stages = {strqubo::Equality{"ab"},
                     strqubo::Includes{"abcab", "ca"},
                     strqubo::Equality{"ba"}};
  pipeline.options.seed = 0x1D1E;
  const service::PipelineResult result =
      service.submit_pipeline(std::move(pipeline)).get();

  ASSERT_EQ(result.stages.size(), 3u);
  EXPECT_TRUE(result.all_sat);
  EXPECT_EQ(result.chained_warm_starts, 1u);  // Only hop 0 -> 1 chained.
  EXPECT_EQ(service.stats().chain_warm_starts, 1u);
}

TEST(PipelineChaining, EmptyPipelineResolvesImmediately) {
  service::SolveService service;
  const service::PipelineResult result =
      service.submit_pipeline(service::PipelineJob{}).get();
  EXPECT_TRUE(result.stages.empty());
  EXPECT_TRUE(result.all_sat);
  EXPECT_EQ(result.chained_warm_starts, 0u);
}

TEST(PipelineChaining, ChainedWitnessesVerifyClassically) {
  service::ServiceOptions options;
  options.num_workers = 2;
  service::SolveService service(options);

  service::PipelineJob pipeline;
  pipeline.stages = {strqubo::Equality{"abab"},
                     strqubo::ReplaceAll{"abab", 'b', 'a'},
                     strqubo::Reverse{"abab"}};
  pipeline.options.seed = 0x7E57;
  const service::PipelineResult result =
      service.submit_pipeline(std::move(pipeline)).get();

  ASSERT_EQ(result.stages.size(), 3u);
  const std::vector<strqubo::Constraint> stages = {
      strqubo::Equality{"abab"}, strqubo::ReplaceAll{"abab", 'b', 'a'},
      strqubo::Reverse{"abab"}};
  for (std::size_t i = 0; i < stages.size(); ++i) {
    SCOPED_TRACE("stage " + std::to_string(i));
    ASSERT_EQ(result.stages[i].status, smtlib::CheckSatStatus::kSat);
    ASSERT_TRUE(result.stages[i].text.has_value());
    EXPECT_TRUE(strqubo::verify_string(stages[i], *result.stages[i].text));
  }
}

}  // namespace
}  // namespace qsmt

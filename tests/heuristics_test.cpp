// Tests for the greedy, random, and tabu samplers.
#include <gtest/gtest.h>

#include "anneal/exact.hpp"
#include "anneal/greedy.hpp"
#include "anneal/random_sampler.hpp"
#include "anneal/tabu.hpp"
#include "util/rng.hpp"

namespace qsmt::anneal {
namespace {

qubo::QuboModel random_model(std::size_t n, Xoshiro256& rng) {
  qubo::QuboModel model(n);
  for (std::size_t i = 0; i < n; ++i)
    model.add_linear(i, rng.uniform() * 2.0 - 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < 0.4)
        model.add_quadratic(i, j, rng.uniform() * 2.0 - 1.0);
    }
  }
  return model;
}

// --- GreedyDescent ---------------------------------------------------------

TEST(GreedyDescend, ReachesLocalMinimum) {
  Xoshiro256 rng(1);
  const auto model = random_model(12, rng);
  const qubo::QuboAdjacency adjacency(model);
  std::vector<std::uint8_t> bits(12);
  for (auto& b : bits) b = rng.coin();

  detail::greedy_descend(adjacency, bits);
  // No single flip may improve further.
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_GE(adjacency.flip_delta(bits, i), -1e-12);
  }
}

TEST(GreedyDescend, NeverIncreasesEnergy) {
  Xoshiro256 rng(2);
  const auto model = random_model(10, rng);
  const qubo::QuboAdjacency adjacency(model);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint8_t> bits(10);
    for (auto& b : bits) b = rng.coin();
    const double before = adjacency.energy(bits);
    detail::greedy_descend(adjacency, bits);
    EXPECT_LE(adjacency.energy(bits), before + 1e-12);
  }
}

TEST(GreedyDescend, SolvesDiagonalModelFromAnyStart) {
  qubo::QuboModel model(8);
  for (std::size_t i = 0; i < 8; ++i) model.add_linear(i, -1.0);
  const qubo::QuboAdjacency adjacency(model);
  std::vector<std::uint8_t> bits(8, 0);
  const std::size_t flips = detail::greedy_descend(adjacency, bits);
  EXPECT_EQ(flips, 8u);
  EXPECT_DOUBLE_EQ(adjacency.energy(bits), -8.0);
}

TEST(GreedyDescent, SamplerFindsGoodSolutions) {
  Xoshiro256 rng(3);
  const auto model = random_model(12, rng);
  const double ground = ExactSolver().ground_energy(model);
  GreedyDescentParams params;
  params.num_reads = 128;
  params.seed = 5;
  const SampleSet samples = GreedyDescent(params).sample(model);
  // Many restarts of steepest descent should come close to the ground state.
  EXPECT_LE(samples.lowest_energy(), ground + 1.0);
}

TEST(GreedyDescent, DeterministicForFixedSeed) {
  Xoshiro256 rng(4);
  const auto model = random_model(10, rng);
  GreedyDescentParams params;
  params.seed = 9;
  const SampleSet a = GreedyDescent(params).sample(model);
  const SampleSet b = GreedyDescent(params).sample(model);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].bits, b[i].bits);
}

TEST(GreedyDescent, RejectsZeroReads) {
  GreedyDescentParams params;
  params.num_reads = 0;
  EXPECT_THROW(GreedyDescent{params}, std::invalid_argument);
}

// --- RandomSampler -----------------------------------------------------------

TEST(RandomSampler, ProducesRequestedReads) {
  qubo::QuboModel model(6);
  RandomSamplerParams params;
  params.num_reads = 50;
  const SampleSet samples = RandomSampler(params).sample(model);
  EXPECT_EQ(samples.total_reads(), 50u);
}

TEST(RandomSampler, EnergiesMatchModel) {
  Xoshiro256 rng(5);
  const auto model = random_model(8, rng);
  const SampleSet samples = RandomSampler().sample(model);
  for (const Sample& s : samples) {
    EXPECT_NEAR(model.energy(s.bits), s.energy, 1e-9);
  }
}

TEST(RandomSampler, IsTypicallyWorseThanGreedy) {
  Xoshiro256 rng(6);
  const auto model = random_model(14, rng);
  RandomSamplerParams rp;
  rp.num_reads = 32;
  GreedyDescentParams gp;
  gp.num_reads = 32;
  const double random_best = RandomSampler(rp).sample(model).lowest_energy();
  const double greedy_best = GreedyDescent(gp).sample(model).lowest_energy();
  EXPECT_LE(greedy_best, random_best + 1e-12);
}

TEST(RandomSampler, RejectsZeroReads) {
  RandomSamplerParams params;
  params.num_reads = 0;
  EXPECT_THROW(RandomSampler{params}, std::invalid_argument);
}

// --- TabuSampler -------------------------------------------------------------

TEST(TabuSampler, FindsGroundOfSmallModels) {
  for (std::uint64_t seed : {10u, 11u, 12u, 13u}) {
    Xoshiro256 rng(seed);
    const auto model = random_model(12, rng);
    const double ground = ExactSolver().ground_energy(model);
    TabuParams params;
    params.seed = seed;
    const SampleSet samples = TabuSampler(params).sample(model);
    EXPECT_NEAR(samples.lowest_energy(), ground, 1e-9) << "seed=" << seed;
  }
}

TEST(TabuSampler, EscapesLocalMinimaViaUphillMoves) {
  // Double-well: all-zero is a local minimum (every single flip costs 1 - 2
  // + ... ), ground is all-ones. Greedy from all-zero-ish starts can stall;
  // tabu's forced best-admissible move walks out.
  qubo::QuboModel model(6);
  for (std::size_t i = 0; i < 6; ++i) model.add_linear(i, 1.0);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) {
      model.add_quadratic(i, j, -0.6);
    }
  }
  // all ones: 6 - 0.6*15 = -3. single one: +1. zero: 0.
  TabuParams params;
  params.num_restarts = 4;
  params.seed = 3;
  const SampleSet samples = TabuSampler(params).sample(model);
  EXPECT_NEAR(samples.lowest_energy(), -3.0, 1e-9);
}

TEST(TabuSampler, DeterministicForFixedSeed) {
  Xoshiro256 rng(14);
  const auto model = random_model(10, rng);
  TabuParams params;
  params.seed = 21;
  const SampleSet a = TabuSampler(params).sample(model);
  const SampleSet b = TabuSampler(params).sample(model);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].bits, b[i].bits);
}

TEST(TabuSampler, RejectsInvalidParams) {
  TabuParams params;
  params.num_restarts = 0;
  EXPECT_THROW(TabuSampler{params}, std::invalid_argument);
  params.num_restarts = 1;
  params.max_stale_iterations = 0;
  EXPECT_THROW(TabuSampler{params}, std::invalid_argument);
}

TEST(Samplers, NamesAreStable) {
  EXPECT_EQ(GreedyDescent().name(), "greedy-descent");
  EXPECT_EQ(RandomSampler().name(), "random");
  EXPECT_EQ(TabuSampler().name(), "tabu");
}

}  // namespace
}  // namespace qsmt::anneal

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "qubo/penalties.hpp"

namespace qsmt::qubo {
namespace {

// Enumerates all assignments of an n-variable model, returning the energy of
// each mask (bit i of mask = variable i).
std::vector<double> all_energies(const QuboModel& model) {
  const std::size_t n = model.num_variables();
  std::vector<double> energies;
  energies.reserve(1u << n);
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    std::vector<std::uint8_t> bits(n);
    for (std::size_t i = 0; i < n; ++i) bits[i] = (mask >> i) & 1;
    energies.push_back(model.energy(bits));
  }
  return energies;
}

TEST(OneHot, GroundStatesAreExactlyOneHot) {
  QuboModel model(4);
  const std::vector<std::size_t> vars{0, 1, 2, 3};
  add_one_hot(model, vars, 2.0);
  const auto energies = all_energies(model);
  for (unsigned mask = 0; mask < 16; ++mask) {
    if (std::popcount(mask) == 1) {
      EXPECT_NEAR(energies[mask], 0.0, 1e-12) << "mask=" << mask;
    } else {
      EXPECT_GT(energies[mask], 0.5) << "mask=" << mask;
    }
  }
}

TEST(OneHot, SubsetOfVariables) {
  QuboModel model(3);
  const std::vector<std::size_t> vars{0, 2};
  add_one_hot(model, vars, 1.0);
  // Variable 1 must be unconstrained.
  EXPECT_DOUBLE_EQ(model.linear(1), 0.0);
  const auto energies = all_energies(model);
  EXPECT_NEAR(energies[0b001], 0.0, 1e-12);
  EXPECT_NEAR(energies[0b100], 0.0, 1e-12);
  EXPECT_NEAR(energies[0b011], 0.0, 1e-12);  // var1 free.
  EXPECT_GT(energies[0b101], 0.5);           // Both selected.
  EXPECT_GT(energies[0b000], 0.5);           // None selected.
}

TEST(PairwiseExclusion, PenalizesPairsOnly) {
  QuboModel model(3);
  const std::vector<std::size_t> vars{0, 1, 2};
  add_pairwise_exclusion(model, vars, 3.0);
  const auto energies = all_energies(model);
  EXPECT_DOUBLE_EQ(energies[0b000], 0.0);  // All zero allowed (unlike one-hot).
  EXPECT_DOUBLE_EQ(energies[0b001], 0.0);
  EXPECT_DOUBLE_EQ(energies[0b011], 3.0);
  EXPECT_DOUBLE_EQ(energies[0b111], 9.0);  // Three pairs.
}

TEST(EqualBits, ZeroIffEqual) {
  QuboModel model(2);
  add_equal_bits(model, 0, 1, 5.0);
  const auto energies = all_energies(model);
  EXPECT_DOUBLE_EQ(energies[0b00], 0.0);
  EXPECT_DOUBLE_EQ(energies[0b11], 0.0);
  EXPECT_DOUBLE_EQ(energies[0b01], 5.0);
  EXPECT_DOUBLE_EQ(energies[0b10], 5.0);
}

TEST(DifferBits, ZeroIffDifferent) {
  QuboModel model(2);
  add_differ_bits(model, 0, 1, 4.0);
  const auto energies = all_energies(model);
  EXPECT_DOUBLE_EQ(energies[0b01], 0.0);
  EXPECT_DOUBLE_EQ(energies[0b10], 0.0);
  EXPECT_DOUBLE_EQ(energies[0b00], 4.0);
  EXPECT_DOUBLE_EQ(energies[0b11], 4.0);
}

class ExactlyKTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExactlyKTest, GroundStatesHavePopcountK) {
  const std::size_t k = GetParam();
  QuboModel model(5);
  const std::vector<std::size_t> vars{0, 1, 2, 3, 4};
  add_exactly_k(model, vars, k, 1.5);
  const auto energies = all_energies(model);
  for (unsigned mask = 0; mask < 32; ++mask) {
    if (std::popcount(mask) == static_cast<int>(k)) {
      EXPECT_NEAR(energies[mask], 0.0, 1e-12) << "mask=" << mask;
    } else {
      EXPECT_GT(energies[mask], 1.0) << "mask=" << mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllK, ExactlyKTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u));

TEST(PinBit, BiasesTowardTarget) {
  QuboModel model(2);
  pin_bit(model, 0, true, 2.0);
  pin_bit(model, 1, false, 2.0);
  EXPECT_DOUBLE_EQ(model.linear(0), -2.0);
  EXPECT_DOUBLE_EQ(model.linear(1), 2.0);
  // Ground state is x0=1, x1=0.
  std::vector<std::uint8_t> ground{1, 0};
  std::vector<std::uint8_t> other{0, 1};
  EXPECT_LT(model.energy(ground), model.energy(other));
}

TEST(Gadgets, ComposeAdditively) {
  // One-hot over {0,1} plus equal_bits(1,2): ground states are 100 / 011.
  QuboModel model(3);
  const std::vector<std::size_t> vars{0, 1};
  add_one_hot(model, vars, 1.0);
  add_equal_bits(model, 1, 2, 1.0);
  const auto energies = all_energies(model);
  EXPECT_NEAR(energies[0b001], 0.0, 1e-12);  // x0=1, x1=0, x2=0.
  EXPECT_NEAR(energies[0b110], 0.0, 1e-12);  // x0=0, x1=1, x2=1.
  EXPECT_GT(energies[0b010], 0.5);
  EXPECT_GT(energies[0b111], 0.5);
}

}  // namespace
}  // namespace qsmt::qubo

#include <gtest/gtest.h>

#include "smtlib/parser.hpp"

namespace qsmt::smtlib {
namespace {

TEST(ParseCommand, SetLogic) {
  const auto commands = parse_script("(set-logic QF_S)");
  ASSERT_EQ(commands.size(), 1u);
  EXPECT_EQ(std::get<SetLogic>(commands[0]).logic, "QF_S");
}

TEST(ParseCommand, DeclareConstSorts) {
  const auto commands = parse_script(
      "(declare-const x String)(declare-const n Int)"
      "(declare-const b Bool)(declare-const r RegLan)");
  ASSERT_EQ(commands.size(), 4u);
  EXPECT_EQ(std::get<DeclareConst>(commands[0]).sort, Sort::kString);
  EXPECT_EQ(std::get<DeclareConst>(commands[1]).sort, Sort::kInt);
  EXPECT_EQ(std::get<DeclareConst>(commands[2]).sort, Sort::kBool);
  EXPECT_EQ(std::get<DeclareConst>(commands[3]).sort, Sort::kRegLan);
}

TEST(ParseCommand, ZeroArityDeclareFun) {
  const auto commands = parse_script("(declare-fun x () String)");
  const auto& decl = std::get<DeclareConst>(commands[0]);
  EXPECT_EQ(decl.name, "x");
  EXPECT_EQ(decl.sort, Sort::kString);
}

TEST(ParseCommand, NonZeroArityDeclareFunRejected) {
  EXPECT_THROW(parse_script("(declare-fun f (Int) String)"),
               std::invalid_argument);
}

TEST(ParseCommand, AssertBuildsTerm) {
  const auto commands = parse_script("(assert (= x \"hi\"))");
  const auto& assert_cmd = std::get<AssertCmd>(commands[0]);
  ASSERT_TRUE(assert_cmd.term->is_apply("="));
  EXPECT_EQ(assert_cmd.term->args[0]->kind, Term::Kind::kVariable);
  EXPECT_EQ(assert_cmd.term->args[1]->kind, Term::Kind::kStringLit);
  EXPECT_EQ(assert_cmd.term->args[1]->atom, "hi");
}

TEST(ParseCommand, SimpleCommands) {
  const auto commands =
      parse_script("(check-sat)(get-model)(echo \"hi\")(exit)");
  EXPECT_TRUE(std::holds_alternative<CheckSat>(commands[0]));
  EXPECT_TRUE(std::holds_alternative<GetModel>(commands[1]));
  EXPECT_EQ(std::get<Echo>(commands[2]).message, "hi");
  EXPECT_TRUE(std::holds_alternative<ExitCmd>(commands[3]));
}

TEST(ParseCommand, OptionsAndInfoAreRecorded) {
  const auto commands = parse_script(
      "(set-option :produce-models true)(set-info :status sat)");
  EXPECT_TRUE(std::holds_alternative<SetOption>(commands[0]));
  EXPECT_TRUE(std::holds_alternative<SetInfo>(commands[1]));
}

TEST(ParseCommand, UnsupportedCommandsThrow) {
  EXPECT_THROW(parse_script("(define-fun f () Int 1)"), std::invalid_argument);
  EXPECT_THROW(parse_script("(declare-const x (Array Int Int))"),
               std::invalid_argument);
  EXPECT_THROW(parse_script("(get-assertions)"), std::invalid_argument);
}

TEST(ParseCommand, PushPopAndGetValue) {
  const auto commands =
      parse_script("(push)(push 2)(pop)(pop 3)(get-value (x y))");
  EXPECT_EQ(std::get<Push>(commands[0]).levels, 1u);
  EXPECT_EQ(std::get<Push>(commands[1]).levels, 2u);
  EXPECT_EQ(std::get<Pop>(commands[2]).levels, 1u);
  EXPECT_EQ(std::get<Pop>(commands[3]).levels, 3u);
  const auto& get_value = std::get<GetValue>(commands[4]);
  ASSERT_EQ(get_value.names.size(), 2u);
  EXPECT_EQ(get_value.names[0], "x");
  EXPECT_EQ(get_value.names[1], "y");
  EXPECT_THROW(parse_script("(get-value ())"), std::invalid_argument);
  EXPECT_THROW(parse_script("(push x)"), std::invalid_argument);
}

TEST(ParseCommand, MalformedCommandsThrow) {
  EXPECT_THROW(parse_script("(assert)"), std::invalid_argument);
  EXPECT_THROW(parse_script("(check-sat extra)"), std::invalid_argument);
  EXPECT_THROW(parse_script("(declare-const x)"), std::invalid_argument);
  EXPECT_THROW(parse_script("(echo notastring)"), std::invalid_argument);
  EXPECT_THROW(parse_script("42"), std::invalid_argument);
}

TEST(ParseTerm, Literals) {
  EXPECT_EQ(parse_term(SExpr::string("s"))->kind, Term::Kind::kStringLit);
  EXPECT_EQ(parse_term(SExpr::number(7))->int_value, 7);
  EXPECT_TRUE(parse_term(SExpr::symbol("true"))->bool_value);
  EXPECT_FALSE(parse_term(SExpr::symbol("false"))->bool_value);
  EXPECT_EQ(parse_term(SExpr::symbol("x"))->kind, Term::Kind::kVariable);
}

TEST(ParseTerm, NestedApplications) {
  const auto exprs = parse_sexprs("(and (str.contains x \"a\") (not b))");
  const TermPtr term = parse_term(exprs[0]);
  ASSERT_TRUE(term->is_apply("and"));
  ASSERT_EQ(term->args.size(), 2u);
  EXPECT_TRUE(term->args[0]->is_apply("str.contains"));
  EXPECT_TRUE(term->args[1]->is_apply("not"));
}

TEST(ParseTerm, EmptyApplicationThrows) {
  const auto exprs = parse_sexprs("()");
  EXPECT_THROW(parse_term(exprs[0]), std::invalid_argument);
}

TEST(ParseTerm, NonSymbolHeadThrows) {
  const auto exprs = parse_sexprs("((f) x)");
  EXPECT_THROW(parse_term(exprs[0]), std::invalid_argument);
}

TEST(TermToString, RendersSmtlibSyntax) {
  const auto exprs = parse_sexprs("(= (str.len x) 5)");
  EXPECT_EQ(to_string(parse_term(exprs[0])), "(= (str.len x) 5)");
}

TEST(SortName, AllSorts) {
  EXPECT_EQ(sort_name(Sort::kBool), "Bool");
  EXPECT_EQ(sort_name(Sort::kInt), "Int");
  EXPECT_EQ(sort_name(Sort::kString), "String");
  EXPECT_EQ(sort_name(Sort::kRegLan), "RegLan");
}

}  // namespace
}  // namespace qsmt::smtlib

#include <gtest/gtest.h>

#include "strqubo/verify.hpp"

namespace qsmt::strqubo {
namespace {

TEST(ReplaceHelpers, ReplaceAllChars) {
  EXPECT_EQ(replace_all_chars("hello world", 'l', 'x'), "hexxo worxd");
  EXPECT_EQ(replace_all_chars("aaa", 'a', 'b'), "bbb");
  EXPECT_EQ(replace_all_chars("abc", 'z', 'q'), "abc");
  EXPECT_EQ(replace_all_chars("", 'a', 'b'), "");
}

TEST(ReplaceHelpers, ReplaceFirstChar) {
  EXPECT_EQ(replace_first_char("hello", 'l', 'x'), "hexlo");
  EXPECT_EQ(replace_first_char("abc", 'z', 'q'), "abc");
  EXPECT_EQ(replace_first_char("aaa", 'a', 'b'), "baa");
}

TEST(VerifyString, Equality) {
  EXPECT_TRUE(verify_string(Equality{"abc"}, "abc"));
  EXPECT_FALSE(verify_string(Equality{"abc"}, "abd"));
  EXPECT_FALSE(verify_string(Equality{"abc"}, "ab"));
  EXPECT_TRUE(verify_string(Equality{""}, ""));
}

TEST(VerifyString, Concat) {
  EXPECT_TRUE(verify_string(Concat{"hello", " world"}, "hello world"));
  EXPECT_FALSE(verify_string(Concat{"hello", "world"}, "hello world"));
}

TEST(VerifyString, SubstringMatch) {
  EXPECT_TRUE(verify_string(SubstringMatch{4, "cat"}, "ccat"));
  EXPECT_TRUE(verify_string(SubstringMatch{4, "cat"}, "cats"));
  EXPECT_FALSE(verify_string(SubstringMatch{4, "cat"}, "cat"));   // Wrong len.
  EXPECT_FALSE(verify_string(SubstringMatch{4, "cat"}, "dogs"));  // No match.
}

TEST(VerifyString, IncludesAlwaysFalse) {
  // Includes produces a position, not a string.
  EXPECT_FALSE(verify_string(Includes{"abc", "b"}, "b"));
}

TEST(VerifyString, IndexOf) {
  EXPECT_TRUE(verify_string(IndexOf{6, "hi", 2}, "qphiqp"));  // Table 1.
  EXPECT_FALSE(verify_string(IndexOf{6, "hi", 2}, "hiqpqp"));
  EXPECT_FALSE(verify_string(IndexOf{6, "hi", 2}, "qphiq"));
  EXPECT_TRUE(verify_string(IndexOf{2, "hi", 0}, "hi"));
}

TEST(VerifyString, LengthBitPrefixForm) {
  EXPECT_TRUE(verify_string(Length{3, 2}, std::string("\x7f\x7f\0", 3)));
  EXPECT_FALSE(verify_string(Length{3, 2}, std::string("\x7f\0\0", 3)));
  EXPECT_FALSE(verify_string(Length{3, 2}, "ab"));
  EXPECT_TRUE(verify_string(Length{2, 0}, std::string("\0\0", 2)));
}

TEST(VerifyString, ReplaceAllAndReplace) {
  EXPECT_TRUE(verify_string(ReplaceAll{"hello", 'l', 'x'}, "hexxo"));
  EXPECT_FALSE(verify_string(ReplaceAll{"hello", 'l', 'x'}, "hexlo"));
  EXPECT_TRUE(verify_string(Replace{"hello", 'l', 'x'}, "hexlo"));
  EXPECT_FALSE(verify_string(Replace{"hello", 'l', 'x'}, "hexxo"));
}

TEST(VerifyString, Reverse) {
  EXPECT_TRUE(verify_string(Reverse{"hello"}, "olleh"));
  EXPECT_FALSE(verify_string(Reverse{"hello"}, "hello"));
  EXPECT_TRUE(verify_string(Reverse{"aba"}, "aba"));
}

TEST(VerifyString, Palindrome) {
  EXPECT_TRUE(verify_string(Palindrome{4}, "abba"));
  EXPECT_TRUE(verify_string(Palindrome{5}, "abcba"));
  EXPECT_TRUE(verify_string(Palindrome{6}, "OnFFnO"));  // Table 1 output.
  EXPECT_FALSE(verify_string(Palindrome{4}, "abab"));
  EXPECT_FALSE(verify_string(Palindrome{4}, "abba?"));  // Wrong length.
  EXPECT_TRUE(verify_string(Palindrome{1}, "x"));
}

TEST(VerifyString, RegexMatch) {
  EXPECT_TRUE(verify_string(RegexMatch{"a[bc]+", 5}, "abcbb"));  // Table 1.
  EXPECT_FALSE(verify_string(RegexMatch{"a[bc]+", 5}, "abcb"));
  EXPECT_FALSE(verify_string(RegexMatch{"a[bc]+", 5}, "adbcb"));
}

TEST(VerifyPosition, FirstOccurrenceSemantics) {
  const Includes includes{"abcabc", "bc"};
  EXPECT_TRUE(verify_position(includes, 1));
  EXPECT_FALSE(verify_position(includes, 4));  // A match, but not the first.
  EXPECT_FALSE(verify_position(includes, 0));
  EXPECT_FALSE(verify_position(includes, std::nullopt));
}

TEST(VerifyPosition, NoOccurrenceExpectsNullopt) {
  const Includes includes{"xyz", "ab"};
  EXPECT_TRUE(verify_position(includes, std::nullopt));
  EXPECT_FALSE(verify_position(includes, 0));
}

TEST(ExpectedString, DeterministicConstraints) {
  EXPECT_EQ(expected_string(Equality{"abc"}), "abc");
  EXPECT_EQ(expected_string(Concat{"ab", "cd"}), "abcd");
  EXPECT_EQ(expected_string(ReplaceAll{"hello", 'l', 'x'}), "hexxo");
  EXPECT_EQ(expected_string(Replace{"hello", 'l', 'x'}), "hexlo");
  EXPECT_EQ(expected_string(Reverse{"hello"}), "olleh");
  EXPECT_EQ(expected_string(Length{3, 2}), std::string("\x7f\x7f\0", 3));
}

TEST(ExpectedString, OpenConstraintsHaveNone) {
  EXPECT_FALSE(expected_string(SubstringMatch{4, "cat"}).has_value());
  EXPECT_FALSE(expected_string(Palindrome{4}).has_value());
  EXPECT_FALSE(expected_string(RegexMatch{"a+", 3}).has_value());
  EXPECT_FALSE(expected_string(IndexOf{6, "hi", 2}).has_value());
  EXPECT_FALSE(expected_string(Includes{"ab", "a"}).has_value());
}

TEST(ExpectedString, SatisfiesItsOwnConstraint) {
  const std::vector<Constraint> deterministic{
      Equality{"abc"}, Concat{"ab", "cd"}, ReplaceAll{"hello", 'l', 'x'},
      Replace{"hello", 'l', 'x'}, Reverse{"hello"}};
  for (const auto& c : deterministic) {
    const auto witness = expected_string(c);
    ASSERT_TRUE(witness.has_value());
    EXPECT_TRUE(verify_string(c, *witness)) << describe(c);
  }
}

}  // namespace
}  // namespace qsmt::strqubo

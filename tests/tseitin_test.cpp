#include <gtest/gtest.h>

#include "sat/tseitin.hpp"
#include "smtlib/parser.hpp"

namespace qsmt::sat {
namespace {

smtlib::TermPtr term(const std::string& text) {
  const auto exprs = smtlib::parse_sexprs(text);
  return smtlib::parse_term(exprs.at(0));
}

// Asserts `text`, then enumerates all assignments to the registered atoms by
// incremental blocking, returning each model as a vector of atom values.
std::vector<std::vector<bool>> atom_models(const std::string& text) {
  CdclSolver solver;
  TseitinEncoder encoder(solver);
  encoder.assert_term(term(text));

  std::vector<std::vector<bool>> models;
  while (solver.solve() == SolveStatus::kSat && models.size() < 64) {
    std::vector<bool> model;
    std::vector<Literal> blocking;
    for (std::size_t a = 0; a < encoder.atoms().size(); ++a) {
      const auto v = encoder.atom_variable(a);
      model.push_back(solver.value(v));
      blocking.push_back(solver.value(v) ? -v : v);
    }
    models.push_back(std::move(model));
    if (blocking.empty()) break;  // No atoms: single propositional model.
    solver.add_clause(std::move(blocking));
  }
  return models;
}

TEST(Tseitin, SingleAtomMustBeTrue) {
  const auto models = atom_models("(= x \"a\")");
  ASSERT_EQ(models.size(), 1u);
  EXPECT_TRUE(models[0][0]);
}

TEST(Tseitin, NegatedAtomMustBeFalse) {
  const auto models = atom_models("(not (= x \"a\"))");
  ASSERT_EQ(models.size(), 1u);
  EXPECT_FALSE(models[0][0]);
}

TEST(Tseitin, DisjunctionHasThreeModels) {
  const auto models = atom_models("(or (= x \"a\") (= x \"b\"))");
  // TT, TF, FT — everything except FF.
  EXPECT_EQ(models.size(), 3u);
  for (const auto& model : models) {
    EXPECT_TRUE(model[0] || model[1]);
  }
}

TEST(Tseitin, ConjunctionHasOneModel) {
  const auto models = atom_models("(and (= x \"a\") (str.contains x \"b\"))");
  ASSERT_EQ(models.size(), 1u);
  EXPECT_TRUE(models[0][0]);
  EXPECT_TRUE(models[0][1]);
}

TEST(Tseitin, XorShapedFormula) {
  const auto models = atom_models(
      "(or (and (= x \"a\") (not (= x \"b\"))) "
      "(and (not (= x \"a\")) (= x \"b\")))");
  ASSERT_EQ(models.size(), 2u);
  for (const auto& model : models) {
    EXPECT_NE(model[0], model[1]);
  }
}

TEST(Tseitin, DuplicateAtomsShareVariables) {
  CdclSolver solver;
  TseitinEncoder encoder(solver);
  encoder.assert_term(term("(or (= x \"a\") (= x \"a\"))"));
  EXPECT_EQ(encoder.atoms().size(), 1u);
}

TEST(Tseitin, DeMorganEquivalence) {
  // not(a and b) has the same atom-models as (or (not a) (not b)).
  auto lhs = atom_models("(not (and (= x \"a\") (= x \"b\")))");
  auto rhs = atom_models("(or (not (= x \"a\")) (not (= x \"b\")))");
  auto key = [](std::vector<std::vector<bool>>& models) {
    std::sort(models.begin(), models.end());
    return models;
  };
  EXPECT_EQ(key(lhs), key(rhs));
}

TEST(Tseitin, BooleanConstants) {
  const auto sat_models = atom_models("true");
  EXPECT_EQ(sat_models.size(), 1u);  // No atoms; single propositional model.

  CdclSolver solver;
  TseitinEncoder encoder(solver);
  encoder.assert_term(term("false"));
  EXPECT_EQ(solver.solve(), SolveStatus::kUnsat);
}

TEST(Tseitin, ContradictionIsUnsat) {
  CdclSolver solver;
  TseitinEncoder encoder(solver);
  encoder.assert_term(term("(and (= x \"a\") (not (= x \"a\")))"));
  EXPECT_EQ(solver.solve(), SolveStatus::kUnsat);
}

TEST(Tseitin, NestedStructureCountsModels) {
  // (a or b) and (not c) over 3 atoms: models = 3 * 1 = 3.
  const auto models = atom_models(
      "(and (or (= x \"a\") (= x \"b\")) (not (str.contains x \"c\")))");
  EXPECT_EQ(models.size(), 3u);
  for (const auto& model : models) {
    EXPECT_TRUE(model[0] || model[1]);
    EXPECT_FALSE(model[2]);
  }
}

TEST(Tseitin, RejectsMalformedBooleans) {
  CdclSolver solver;
  TseitinEncoder encoder(solver);
  EXPECT_THROW(encoder.assert_term(term("(not)")), std::invalid_argument);
  EXPECT_THROW(encoder.assert_term(term("(and)")), std::invalid_argument);
}

}  // namespace
}  // namespace qsmt::sat

#include <gtest/gtest.h>

#include <set>

#include "anneal/exact.hpp"
#include "qubo/serialize.hpp"
#include "strenc/ascii7.hpp"
#include "strqubo/builders.hpp"

namespace qsmt::strqubo {
namespace {

using strenc::kBitsPerChar;
using strenc::variable_index;

// Decodes the ground state of a diagonal-only model: bit = 1 iff q_ii < 0.
std::string decode_diagonal_ground(const qubo::QuboModel& model) {
  std::vector<std::uint8_t> bits(model.num_variables());
  for (std::size_t i = 0; i < model.num_variables(); ++i) {
    bits[i] = model.linear_terms()[i] < 0.0 ? 1 : 0;
  }
  return strenc::decode_string(bits);
}

TEST(BuildEquality, PaperExampleCharacterA) {
  // §4.1.2: generating "a" requires a 7x7 matrix with diagonal
  // [-A, -A, +A, +A, +A, +A, -A].
  const auto model = build_equality("a");
  ASSERT_EQ(model.num_variables(), 7u);
  EXPECT_EQ(model.num_interactions(), 0u);
  const std::vector<double> expected{-1, -1, 1, 1, 1, 1, -1};
  EXPECT_EQ(model.linear_terms(), expected);
}

TEST(BuildEquality, GroundStateDecodesToTarget) {
  const auto model = build_equality("hello");
  EXPECT_EQ(model.num_variables(), 35u);
  EXPECT_EQ(decode_diagonal_ground(model), "hello");
}

TEST(BuildEquality, StrengthScalesEntries) {
  BuildOptions options;
  options.strength = 2.5;
  const auto model = build_equality("a", options);
  EXPECT_DOUBLE_EQ(model.linear_terms()[0], -2.5);
  EXPECT_DOUBLE_EQ(model.linear_terms()[2], 2.5);
}

TEST(BuildEquality, EmptyStringGivesEmptyModel) {
  const auto model = build_equality("");
  EXPECT_EQ(model.num_variables(), 0u);
}

TEST(BuildEquality, RejectsNonAscii) {
  EXPECT_THROW(build_equality("\x80"), std::invalid_argument);
}

TEST(BuildEquality, ExpectedGroundEnergyIsNegPopcount) {
  // Ground energy = -A per 1-bit of the target encoding.
  const std::string target = "hi";
  const auto bits = strenc::encode_string(target);
  int popcount = 0;
  for (auto b : bits) popcount += b;
  EXPECT_DOUBLE_EQ(expected_ground_energy(Equality{target}),
                   -static_cast<double>(popcount));
  EXPECT_DOUBLE_EQ(
      anneal::ExactSolver().ground_energy(build_equality(target)),
      expected_ground_energy(Equality{target}));
}

TEST(BuildConcat, EqualsEqualityOfJoinedString) {
  EXPECT_TRUE(build_concat("he", "llo") == build_equality("hello"));
}

TEST(BuildSubstringMatch, PaperCatExampleEncodesCcat) {
  // §4.3.2: 4-character string containing "cat" -> the overwrite semantics
  // leave "ccat" encoded in the matrix.
  const auto model = build_substring_match(4, "cat");
  EXPECT_EQ(decode_diagonal_ground(model), "ccat");
}

TEST(BuildSubstringMatch, ExactFitIsEquality) {
  EXPECT_TRUE(build_substring_match(3, "cat") == build_equality("cat"));
}

TEST(BuildSubstringMatch, OverwriteSemanticsForShortSubstring) {
  // "hi" in length 6: every start position encoded, later wins -> "hhhhhi".
  const auto model = build_substring_match(6, "hi");
  EXPECT_EQ(decode_diagonal_ground(model), "hhhhhi");
}

TEST(BuildSubstringMatch, Validation) {
  EXPECT_THROW(build_substring_match(2, "cat"), std::invalid_argument);
  EXPECT_THROW(build_substring_match(4, ""), std::invalid_argument);
}

TEST(BuildIncludes, MatrixSizeIsStartPositionCount) {
  // §4.4.4: substring of length 3 in a string of length 4 -> 2x2 matrix.
  const auto model = build_includes("abcd", "bcd");
  EXPECT_EQ(model.num_variables(), 2u);
}

TEST(BuildIncludes, RewardsMatchCountsPaperLiteralObjective) {
  BuildOptions options;
  options.includes_selection_cost = 0.0;  // §4.4's objective verbatim.
  const auto model = build_includes("abab", "ab", options);
  // Positions 0..2; char matches: pos0 = 2, pos1 = 0, pos2 = 2.
  // First-match surcharge C: pos0 gets 0, pos2 gets D (one match before it).
  EXPECT_DOUBLE_EQ(model.linear_terms()[0], -2.0);
  EXPECT_DOUBLE_EQ(model.linear_terms()[1], 0.0);
  EXPECT_DOUBLE_EQ(model.linear_terms()[2],
                   -2.0 + options.first_match_increment);
}

TEST(BuildIncludes, DefaultSelectionCostSeparatesMatchesFromRest) {
  const auto model = build_includes("abab", "ab");  // θ = 1.5 by default.
  // Full matches sit below zero, non-matches above: the ground state is
  // forced to pick a real occurrence or nothing.
  EXPECT_DOUBLE_EQ(model.linear_terms()[0], -0.5);
  EXPECT_DOUBLE_EQ(model.linear_terms()[1], 1.5);
  EXPECT_DOUBLE_EQ(model.linear_terms()[2], 0.0);  // -0.5 + D.
}

TEST(BuildIncludes, PairwisePenaltyOnAllPairs) {
  BuildOptions options;
  const auto model = build_includes("aaaa", "a", options);
  ASSERT_EQ(model.num_variables(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(model.quadratic(i, j), options.one_hot_penalty);
    }
  }
}

TEST(BuildIncludes, GroundStateSelectsFirstMatch) {
  const auto model = build_includes("xxcatcat", "cat");
  const auto samples = anneal::ExactSolver().sample(model);
  const auto& best = samples.best();
  // Exactly one position selected, and it is index 2 (the first match).
  std::size_t selected = 99;
  std::size_t count = 0;
  for (std::size_t i = 0; i < best.bits.size(); ++i) {
    if (best.bits[i]) {
      selected = i;
      ++count;
    }
  }
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(selected, 2u);
}

TEST(BuildIncludes, NoMatchGroundEnergyIsZero) {
  const auto model = build_includes("zzzz", "ab");
  // No character ever matches, so all diagonals are 0 and ground is 0.
  EXPECT_DOUBLE_EQ(anneal::ExactSolver().ground_energy(model), 0.0);
  EXPECT_DOUBLE_EQ(expected_ground_energy(Includes{"zzzz", "ab"}), 0.0);
}

TEST(BuildIncludes, ExpectedGroundEnergyMatchesExact) {
  const std::vector<std::pair<std::string, std::string>> cases{
      {"hello world", "world"}, {"abab", "ab"}, {"aaaa", "aa"}};
  for (const auto& [text, sub] : cases) {
    EXPECT_NEAR(expected_ground_energy(Includes{text, sub}),
                anneal::ExactSolver().ground_energy(build_includes(text, sub)),
                1e-9)
        << text << "/" << sub;
  }
}

TEST(BuildIndexOf, StrongWindowSoftElsewhere) {
  BuildOptions options;
  const auto model = build_index_of(6, "hi", 2, options);
  EXPECT_EQ(model.num_variables(), 42u);
  const double strong = options.strong_multiplier * options.strength;
  const double soft = options.soft_weight * options.strength;

  // Window positions 2..3 carry +-strong entries matching 'h' and 'i'.
  const auto h_bits = strenc::encode_char('h');
  for (std::size_t b = 0; b < kBitsPerChar; ++b) {
    EXPECT_DOUBLE_EQ(model.linear_terms()[variable_index(2, b)],
                     h_bits[b] ? -strong : strong);
  }
  // Free positions carry the letter-prefix bias on bits 0 and 1 only.
  EXPECT_DOUBLE_EQ(model.linear_terms()[variable_index(0, 0)], -soft);
  EXPECT_DOUBLE_EQ(model.linear_terms()[variable_index(0, 1)], -soft);
  for (std::size_t b = 2; b < kBitsPerChar; ++b) {
    EXPECT_DOUBLE_EQ(model.linear_terms()[variable_index(0, b)], 0.0);
  }
}

TEST(BuildIndexOf, Validation) {
  EXPECT_THROW(build_index_of(4, "hi", 3, {}), std::invalid_argument);
  EXPECT_THROW(build_index_of(4, "", 0, {}), std::invalid_argument);
  EXPECT_NO_THROW(build_index_of(4, "hi", 2, {}));
}

TEST(BuildLength, PaperFaithfulBitPrefix) {
  // §4.6: first 7L diagonal entries -A, the rest +A.
  const auto model = build_length(3, 2);
  ASSERT_EQ(model.num_variables(), 21u);
  for (std::size_t i = 0; i < 14; ++i) {
    EXPECT_DOUBLE_EQ(model.linear_terms()[i], -1.0);
  }
  for (std::size_t i = 14; i < 21; ++i) {
    EXPECT_DOUBLE_EQ(model.linear_terms()[i], 1.0);
  }
}

TEST(BuildLength, GroundDecodesToDelPrefix) {
  const auto model = build_length(3, 2);
  const std::string ground = decode_diagonal_ground(model);
  EXPECT_EQ(ground, std::string("\x7f\x7f\0", 3));
}

TEST(BuildLength, Validation) {
  EXPECT_THROW(build_length(2, 3), std::invalid_argument);
  EXPECT_NO_THROW(build_length(3, 3));
  EXPECT_NO_THROW(build_length(3, 0));
}

TEST(BuildLengthPrintable, TailPinnedToNul) {
  const auto model = build_length_printable(4, 2);
  // Positions 2..3 encode NUL: all bits biased to 0 (+A).
  for (std::size_t pos = 2; pos < 4; ++pos) {
    for (std::size_t b = 0; b < kBitsPerChar; ++b) {
      EXPECT_DOUBLE_EQ(model.linear_terms()[variable_index(pos, b)], 1.0);
    }
  }
  // Head positions carry the letter bias.
  EXPECT_LT(model.linear_terms()[variable_index(0, 0)], 0.0);
}

TEST(BuildReplaceAll, ReplacesEveryOccurrence) {
  // Table 1: concat "hello"+" world" then replace all 'l' with 'x' gives
  // "hexxo worxd".
  const auto model = build_replace_all("hello world", 'l', 'x');
  EXPECT_EQ(decode_diagonal_ground(model), "hexxo worxd");
}

TEST(BuildReplace, ReplacesFirstOccurrenceOnly) {
  const auto model = build_replace("hello", 'l', 'x');
  EXPECT_EQ(decode_diagonal_ground(model), "hexlo");
}

TEST(BuildReplace, NoOccurrenceIsIdentity) {
  EXPECT_TRUE(build_replace("abc", 'z', 'q') == build_equality("abc"));
  EXPECT_TRUE(build_replace_all("abc", 'z', 'q') == build_equality("abc"));
}

TEST(BuildReverse, EncodesReversedString) {
  const auto model = build_reverse("hello");
  EXPECT_EQ(decode_diagonal_ground(model), "olleh");
}

TEST(BuildPalindrome, MatrixMatchesTable1Snippet) {
  // Table 1 palindrome row: diagonal 1.00 with -2.00 couplings to the
  // mirrored bit.
  const auto model = build_palindrome(6);
  ASSERT_EQ(model.num_variables(), 42u);
  // Bit b of char 0 pairs with bit b of char 5.
  for (std::size_t b = 0; b < kBitsPerChar; ++b) {
    const std::size_t i = variable_index(0, b);
    const std::size_t j = variable_index(5, b);
    EXPECT_DOUBLE_EQ(model.linear_terms()[i], 1.0);
    EXPECT_DOUBLE_EQ(model.linear_terms()[j], 1.0);
    EXPECT_DOUBLE_EQ(model.quadratic(i, j), -2.0);
  }
  // 3 mirrored char pairs x 7 bits.
  EXPECT_EQ(model.num_interactions(), 21u);
}

TEST(BuildPalindrome, OddLengthLeavesMiddleFree) {
  const auto model = build_palindrome(5);
  for (std::size_t b = 0; b < kBitsPerChar; ++b) {
    EXPECT_DOUBLE_EQ(model.linear_terms()[variable_index(2, b)], 0.0);
  }
  EXPECT_EQ(model.num_interactions(), 14u);  // 2 pairs x 7 bits.
}

TEST(BuildPalindrome, GroundEnergyIsZero) {
  EXPECT_DOUBLE_EQ(expected_ground_energy(Palindrome{4}), 0.0);
  EXPECT_DOUBLE_EQ(anneal::ExactSolver().ground_energy(build_palindrome(2)),
                   0.0);
}

TEST(BuildPalindrome, AnyPalindromeIsGroundAnyNonPalindromeIsNot) {
  const auto model = build_palindrome(4);
  for (const char* s : {"abba", "xyyx", "aaaa", "zzzz"}) {
    const auto bits = strenc::encode_string(s);
    EXPECT_DOUBLE_EQ(model.energy(bits), 0.0) << s;
  }
  for (const char* s : {"abcd", "abab"}) {
    const auto bits = strenc::encode_string(s);
    EXPECT_GT(model.energy(bits), 0.5) << s;
  }
}

TEST(BuildPalindrome, PrintableBiasLowersLetterStates) {
  BuildOptions options;
  options.palindrome_printable_bias = 0.05;
  const auto model = build_palindrome(2, options);
  const auto letters = strenc::encode_string("aa");
  const auto nulls = strenc::encode_string(std::string(2, '\0'));
  EXPECT_LT(model.energy(letters), model.energy(nulls));
  EXPECT_NEAR(expected_ground_energy(Palindrome{2}, options),
              anneal::ExactSolver().ground_energy(model), 1e-9);
}

TEST(BuildPalindrome, RejectsZeroLength) {
  EXPECT_THROW(build_palindrome(0), std::invalid_argument);
}

TEST(BuildRegex, LiteralPositionsUseEqualityRow) {
  const auto model = build_regex("ab", 2);
  EXPECT_TRUE(model == build_equality("ab"));
}

TEST(BuildRegex, AveragedClassSharesStrength) {
  // §4.11: each class character contributes ±A/|chars| per bit.
  const auto model = build_regex("[bc]", 1);
  // b = 1100010, c = 1100011: bits 0,1 agree on 1 -> -1; bits 2..4 agree on
  // 0 -> +1; bit 5 agrees on 1 -> -1; bit 6 differs -> 0.
  const std::vector<double> expected{-1, -1, 1, 1, 1, -1, 0};
  ASSERT_EQ(model.num_variables(), 7u);
  for (std::size_t b = 0; b < 7; ++b) {
    EXPECT_NEAR(model.linear_terms()[b], expected[b], 1e-12) << "bit " << b;
  }
}

TEST(BuildRegex, AveragedGroundMatchesExpectedFormula) {
  const Constraint constraint = RegexMatch{"a[bc]+", 3};
  EXPECT_NEAR(expected_ground_energy(constraint),
              anneal::ExactSolver().ground_energy(build_regex("a[bc]+", 3)),
              1e-9);
}

TEST(BuildRegex, OneHotAddsSelectorVariables) {
  BuildOptions options;
  options.regex_encoding = RegexClassEncoding::kOneHotSelectors;
  const auto model = build_regex("a[bc]", 2, options);
  // 14 string bits + 2 selectors.
  EXPECT_EQ(model.num_variables(), 16u);
  EXPECT_EQ(regex_selector_base(2), 14u);
  EXPECT_GT(model.num_interactions(), 0u);
}

TEST(BuildRegex, OneHotGroundStatesAreClassMembers) {
  BuildOptions options;
  options.regex_encoding = RegexClassEncoding::kOneHotSelectors;
  const auto model = build_regex("[bd]", 1, options);  // b/d differ in 2 bits.
  const auto samples = anneal::ExactSolver().sample(model);
  // All tied ground states decode to 'b' or 'd' (never a merge artifact).
  const double ground = samples.lowest_energy();
  for (const auto& s : samples) {
    if (s.energy > ground + 1e-9) break;
    const std::string decoded =
        strenc::decode_string(std::span(s.bits).subspan(0, 7));
    EXPECT_TRUE(decoded == "b" || decoded == "d") << decoded;
  }
  EXPECT_NEAR(expected_ground_energy(RegexMatch{"[bd]", 1}, options), ground,
              1e-9);
}

TEST(BuildRegex, AveragedDistantClassAdmitsArtifacts) {
  // The paper-faithful averaged encoding leaves disagreeing bits unbiased:
  // for [bd] the ground manifold includes bit patterns outside the class —
  // the artifact the E6 ablation measures.
  const auto model = build_regex("[bd]", 1);
  const auto samples = anneal::ExactSolver().sample(model);
  const double ground = samples.lowest_energy();
  std::set<std::string> decoded;
  for (const auto& s : samples) {
    if (s.energy > ground + 1e-9) break;
    decoded.insert(strenc::decode_string(s.bits));
  }
  EXPECT_GT(decoded.size(), 2u);  // More ground states than class members.
}

TEST(BuildDispatch, MatchesDirectBuilders) {
  EXPECT_TRUE(build(Equality{"ab"}) == build_equality("ab"));
  EXPECT_TRUE(build(Concat{"a", "b"}) == build_concat("a", "b"));
  EXPECT_TRUE(build(SubstringMatch{4, "cat"}) ==
              build_substring_match(4, "cat"));
  EXPECT_TRUE(build(Includes{"abc", "b"}) == build_includes("abc", "b"));
  EXPECT_TRUE(build(IndexOf{6, "hi", 2}) == build_index_of(6, "hi", 2));
  EXPECT_TRUE(build(Length{3, 2}) == build_length(3, 2));
  EXPECT_TRUE(build(ReplaceAll{"ll", 'l', 'x'}) ==
              build_replace_all("ll", 'l', 'x'));
  EXPECT_TRUE(build(Replace{"ll", 'l', 'x'}) == build_replace("ll", 'l', 'x'));
  EXPECT_TRUE(build(Reverse{"ab"}) == build_reverse("ab"));
  EXPECT_TRUE(build(Palindrome{4}) == build_palindrome(4));
  EXPECT_TRUE(build(RegexMatch{"a[bc]", 2}) == build_regex("a[bc]", 2));
}

TEST(ConstraintMeta, NamesAndDescriptions) {
  EXPECT_EQ(constraint_name(Equality{"x"}), "equality");
  EXPECT_EQ(constraint_name(Palindrome{4}), "palindrome");
  EXPECT_EQ(constraint_name(Includes{"ab", "b"}), "includes");
  EXPECT_NE(describe(Reverse{"hello"}).find("hello"), std::string::npos);
  EXPECT_NE(describe(RegexMatch{"a[bc]+", 5}).find("a[bc]+"),
            std::string::npos);
}

TEST(ConstraintMeta, NumVariablesAndKind) {
  EXPECT_EQ(constraint_num_variables(Equality{"hello"}), 35u);
  EXPECT_EQ(constraint_num_variables(Includes{"abcd", "bc"}), 3u);
  EXPECT_TRUE(produces_string(Equality{"x"}));
  EXPECT_FALSE(produces_string(Includes{"ab", "a"}));
}

}  // namespace
}  // namespace qsmt::strqubo

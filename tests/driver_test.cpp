#include <gtest/gtest.h>

#include "anneal/exact.hpp"
#include "anneal/simulated_annealer.hpp"
#include "smtlib/driver.hpp"
#include "smtlib/parser.hpp"

namespace qsmt::smtlib {
namespace {

anneal::SimulatedAnnealer fast_annealer(std::uint64_t seed) {
  anneal::SimulatedAnnealerParams p;
  p.num_reads = 48;
  p.num_sweeps = 192;
  p.seed = seed;
  return anneal::SimulatedAnnealer(p);
}

TEST(SmtDriver, SatOnSimpleEquality) {
  const auto annealer = fast_annealer(1);
  SmtDriver driver(annealer);
  const std::string out = driver.run_script(R"(
    (set-logic QF_S)
    (declare-const x String)
    (assert (= x "hello"))
    (check-sat)
    (get-model)
  )");
  EXPECT_NE(out.find("sat\n"), std::string::npos);
  EXPECT_NE(out.find("(define-fun x () String \"hello\")"),
            std::string::npos);
  ASSERT_EQ(driver.history().size(), 1u);
  EXPECT_EQ(driver.history()[0].status, CheckSatStatus::kSat);
  EXPECT_EQ(driver.history()[0].model_value, "hello");
}

TEST(SmtDriver, SatOnContainsWithLength) {
  const auto annealer = fast_annealer(2);
  SmtDriver driver(annealer);
  const std::string out = driver.run_script(R"(
    (declare-const x String)
    (assert (= (str.len x) 6))
    (assert (str.contains x "hi"))
    (check-sat)
  )");
  EXPECT_EQ(out, "sat\n");
  const auto& record = driver.history().back();
  EXPECT_EQ(record.model_value.size(), 6u);
  EXPECT_NE(record.model_value.find("hi"), std::string::npos);
}

TEST(SmtDriver, MergedConjunctionSolvesJointly) {
  // Palindrome AND contains: merged QUBO must satisfy both at once.
  const auto annealer = fast_annealer(3);
  SmtDriver driver(annealer);
  const std::string out = driver.run_script(R"(
    (declare-const x String)
    (assert (= (str.len x) 4))
    (assert (qsmt.is_palindrome x))
    (assert (str.contains x "bb"))
    (check-sat)
  )");
  EXPECT_EQ(out, "sat\n");
  const auto& record = driver.history().back();
  EXPECT_EQ(record.num_constraints, 2u);
  const std::string& v = record.model_value;
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], v[3]);
  EXPECT_EQ(v[1], v[2]);
  EXPECT_NE(v.find("bb"), std::string::npos);
}

TEST(SmtDriver, NotContainsAndCharAtConjunction) {
  const auto annealer = fast_annealer(20);
  SmtDriver driver(annealer);
  const std::string out = driver.run_script(R"(
    (declare-const x String)
    (assert (= (str.len x) 4))
    (assert (not (str.contains x "zz")))
    (assert (= (str.at x 0) "k"))
    (check-sat)
  )");
  EXPECT_EQ(out, "sat\n");
  const std::string& v = driver.history().back().model_value;
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 'k');
  EXPECT_EQ(v.find("zz"), std::string::npos);
}

TEST(SmtDriver, RegexStarAndOptional) {
  const auto annealer = fast_annealer(27);
  SmtDriver driver(annealer);
  const std::string out = driver.run_script(R"(
    (declare-const x String)
    (assert (= (str.len x) 3))
    (assert (str.in_re x (re.++ (re.* (str.to_re "a"))
                                (str.to_re "b")
                                (re.opt (str.to_re "c")))))
    (check-sat)
  )");
  EXPECT_EQ(out, "sat\n");
  const std::string& v = driver.history().back().model_value;
  // Length 3 matches of a*bc? are "aab" or "abc".
  EXPECT_TRUE(v == "aab" || v == "abc") << v;
}

TEST(SmtDriver, UnsatOnFalseGroundFact) {
  const auto annealer = fast_annealer(4);
  SmtDriver driver(annealer);
  const std::string out = driver.run_script(R"(
    (assert (= "a" "b"))
    (check-sat)
  )");
  EXPECT_EQ(out, "unsat\n");
}

TEST(SmtDriver, SatOnTrueGroundScript) {
  const auto annealer = fast_annealer(5);
  SmtDriver driver(annealer);
  const std::string out = driver.run_script(R"(
    (assert (str.contains "hello" "ell"))
    (assert (= (str.len "abc") 3))
    (check-sat)
    (get-model)
  )");
  EXPECT_NE(out.find("sat\n"), std::string::npos);
  EXPECT_NE(out.find("(model)"), std::string::npos);
}

TEST(SmtDriver, UnknownOnOutOfFragmentAtoms) {
  const auto annealer = fast_annealer(6);
  SmtDriver driver(annealer);
  const std::string out = driver.run_script(R"(
    (declare-const x String)
    (assert (or (= x "a") (= x "b")))
    (check-sat)
  )");
  EXPECT_EQ(out, "unknown\n");
  EXPECT_FALSE(driver.history().back().notes.empty());
}

TEST(SmtDriver, UnsatWhenLengthsDisagree) {
  const auto annealer = fast_annealer(7);
  SmtDriver driver(annealer);
  const std::string out = driver.run_script(R"(
    (declare-const x String)
    (assert (= x "ab"))
    (assert (= x "abc"))
    (check-sat)
  )");
  // Every conjunct pins the generated string's length exactly, so a length
  // disagreement is a certified refutation, not an unknown.
  EXPECT_EQ(out, "unsat\n");
  ASSERT_FALSE(driver.history().back().notes.empty());
  EXPECT_NE(driver.history().back().notes.back().find("certified"),
            std::string::npos);
}

TEST(SmtDriver, UnsatOnContradictorySameLengthEqualities) {
  const auto annealer = fast_annealer(16);
  SmtDriver driver(annealer);
  const std::string out = driver.run_script(R"(
    (declare-const x String)
    (assert (= x "ab"))
    (assert (= x "cd"))
    (check-sat)
  )");
  // The pinned-witness route: "ab" is the unique satisfier of the first
  // conjunct and violates the second.
  EXPECT_EQ(out, "unsat\n");
}

TEST(SmtDriver, UnsatByExhaustiveSearch) {
  const auto annealer = fast_annealer(17);
  SmtDriver driver(annealer);
  // A palindrome of length 2 whose two halves are forced to differ: no
  // unique-witness conjunct exists, so only the exhaustive route proves it.
  const std::string out = driver.run_script(R"(
    (declare-const x String)
    (assert (= (str.len x) 2))
    (assert (qsmt.is_palindrome x))
    (assert (= (str.at x 0) "a"))
    (assert (= (str.at x 1) "b"))
    (check-sat)
  )");
  EXPECT_EQ(out, "unsat\n");
  ASSERT_FALSE(driver.history().back().notes.empty());
  EXPECT_NE(driver.history().back().notes.back().find("exhaustive"),
            std::string::npos);
}

TEST(SmtDriver, UnsatOnImpossibleRegexLength) {
  const auto annealer = fast_annealer(18);
  SmtDriver driver(annealer);
  const std::string out = driver.run_script(R"(
    (declare-const x String)
    (assert (= (str.len x) 1))
    (assert (str.in_re x (re.++ (str.to_re "a") (str.to_re "b"))))
    (check-sat)
  )");
  EXPECT_EQ(out, "unsat\n");
}

TEST(SmtDriver, GetModelWithoutSatIsError) {
  const auto annealer = fast_annealer(8);
  SmtDriver driver(annealer);
  const std::string out = driver.run_script("(get-model)");
  EXPECT_NE(out.find("error"), std::string::npos);
}

TEST(SmtDriver, EchoAndExit) {
  const auto annealer = fast_annealer(9);
  SmtDriver driver(annealer);
  const std::string out = driver.run_script(R"(
    (echo "before")
    (exit)
    (echo "after")
  )");
  EXPECT_EQ(out, "before\n");
}

TEST(SmtDriver, DuplicateDeclarationThrows) {
  const auto annealer = fast_annealer(10);
  SmtDriver driver(annealer);
  EXPECT_THROW(
      driver.run_script("(declare-const x String)(declare-const x Int)"),
      std::invalid_argument);
}

TEST(SmtDriver, ResetClearsState) {
  const auto annealer = fast_annealer(11);
  SmtDriver driver(annealer);
  driver.run_script("(declare-const x String)(assert (= x \"a\"))");
  driver.reset();
  // Redeclaration is fine after reset, and old assertions are gone.
  const std::string out = driver.run_script(R"(
    (declare-const x String)
    (assert (= x "zz"))
    (check-sat)
  )");
  EXPECT_EQ(out, "sat\n");
  EXPECT_EQ(driver.history().back().model_value, "zz");
}

TEST(SmtDriver, ModelQuotesEmbeddedQuotes) {
  const auto annealer = fast_annealer(12);
  SmtDriver driver(annealer);
  const std::string out = driver.run_script(R"(
    (declare-const x String)
    (assert (= x "a""b"))
    (check-sat)
    (get-model)
  )");
  EXPECT_NE(out.find("sat\n"), std::string::npos);
  EXPECT_NE(out.find("\"a\"\"b\""), std::string::npos);
}

TEST(SmtDriver, PushPopRestoresAssertions) {
  const auto annealer = fast_annealer(21);
  SmtDriver driver(annealer);
  const std::string out = driver.run_script(R"(
    (declare-const x String)
    (assert (= x "base"))
    (push)
    (assert (= x "different"))
    (check-sat)
    (pop)
    (check-sat)
  )");
  // Inside the push the two equalities pin different lengths -> certified
  // unsat; after the pop only the base assertion remains.
  EXPECT_EQ(out, "unsat\nsat\n");
  EXPECT_EQ(driver.history().back().model_value, "base");
}

TEST(SmtDriver, PushPopRestoresDeclarations) {
  const auto annealer = fast_annealer(22);
  SmtDriver driver(annealer);
  std::string out;
  for (const Command& command : parse_script(R"(
        (push)
        (declare-const y String)
        (pop)
        (declare-const y Int)
      )")) {
    driver.execute(command, out);  // Must not throw a duplicate error.
  }
  EXPECT_EQ(driver.scope_depth(), 0u);
}

TEST(SmtDriver, PopBelowBottomRepliesErrorAndSurvives) {
  const auto annealer = fast_annealer(23);
  SmtDriver driver(annealer);
  // z3-style: (pop) below depth 0 is an (error ...) reply, not an
  // exception — the stack is untouched and the session keeps working.
  std::string out = driver.run_script("(pop)");
  EXPECT_EQ(out, "(error \"pop below the bottom of the assertion stack\")\n");
  EXPECT_EQ(driver.scope_depth(), 0u);
  out = driver.run_script(R"(
    (declare-const x String)
    (assert (= x "ok"))
    (check-sat)
    (pop 2)
    (check-sat)
  )");
  EXPECT_EQ(out,
            "sat\n(error \"pop below the bottom of the assertion stack\")\n"
            "sat\n");
}

TEST(SmtDriver, CheckSatAssumingUndeclaredSymbolRepliesError) {
  const auto annealer = fast_annealer(27);
  SmtDriver driver(annealer);
  const std::string out = driver.run_script(R"(
    (declare-const x String)
    (assert (= x "ab"))
    (check-sat-assuming ((= (str.len y) 2)))
    (check-sat)
  )");
  EXPECT_EQ(out,
            "(error \"check-sat-assuming: undeclared symbol 'y'\")\nsat\n");
  // The failed check left no verdict behind.
  EXPECT_EQ(driver.history().size(), 1u);
}

TEST(SmtDriver, PushPopWithLevels) {
  const auto annealer = fast_annealer(24);
  SmtDriver driver(annealer);
  std::string out;
  for (const Command& command : parse_script("(push 3)(pop 2)")) {
    driver.execute(command, out);
  }
  EXPECT_EQ(driver.scope_depth(), 1u);
}

TEST(SmtDriver, GetValueReportsModelConstant) {
  const auto annealer = fast_annealer(25);
  SmtDriver driver(annealer);
  const std::string out = driver.run_script(R"(
    (declare-const x String)
    (assert (= x "val"))
    (check-sat)
    (get-value (x))
  )");
  EXPECT_NE(out.find("((x \"val\"))"), std::string::npos);
}

TEST(SmtDriver, GetValueWithoutModelIsError) {
  const auto annealer = fast_annealer(26);
  SmtDriver driver(annealer);
  const std::string out = driver.run_script("(get-value (x))");
  EXPECT_NE(out.find("error"), std::string::npos);
}

TEST(SolveConjunction, EmptyIsTriviallySolved) {
  const auto annealer = fast_annealer(13);
  const ConjunctionResult result = solve_conjunction({}, annealer, {});
  EXPECT_TRUE(result.solved);
  EXPECT_TRUE(result.value.empty());
}

TEST(SolveConjunction, SingleConstraintUsesSolverPath) {
  const anneal::ExactSolver exact;
  const ConjunctionResult result =
      solve_conjunction({strqubo::Equality{"ab"}}, exact, {});
  EXPECT_TRUE(result.solved);
  EXPECT_EQ(result.value, "ab");
  EXPECT_EQ(result.num_qubo_variables, 14u);
}

TEST(SolveConjunction, RejectsIncludesConjuncts) {
  const auto annealer = fast_annealer(14);
  const ConjunctionResult result = solve_conjunction(
      {strqubo::Equality{"ab"}, strqubo::Includes{"ab", "a"}}, annealer, {});
  EXPECT_FALSE(result.solved);
  EXPECT_FALSE(result.note.empty());
}

TEST(SolveConjunction, ContradictoryConjunctsFailVerification) {
  const auto annealer = fast_annealer(15);
  const ConjunctionResult result = solve_conjunction(
      {strqubo::Equality{"ab"}, strqubo::Equality{"cd"}}, annealer, {});
  EXPECT_FALSE(result.solved);
  EXPECT_FALSE(result.note.empty());
}

TEST(SolveConjunction, OneHotRegexConjunctsRemapSelectorBlocks) {
  // Two one-hot regex models over the same 4-character string each append
  // their own selector block; the merge must give each block a fresh range
  // (colliding selectors would corrupt both one-hot gadgets).
  const auto annealer = fast_annealer(30);
  strqubo::BuildOptions options;
  options.regex_encoding = strqubo::RegexClassEncoding::kOneHotSelectors;
  const std::vector<strqubo::Constraint> conjuncts{
      strqubo::RegexMatch{"[bd]+", 4},   // 4 class positions: 8 selectors.
      strqubo::RegexMatch{"b[bd]+", 4},  // 1 literal + 3 classes: 6.
  };
  const ConjunctionResult result =
      solve_conjunction(conjuncts, annealer, options);
  ASSERT_TRUE(result.solved) << result.note;
  EXPECT_EQ(result.num_qubo_variables, 28u + 8u + 6u);
  EXPECT_EQ(result.value.size(), 4u);
  EXPECT_EQ(result.value[0], 'b');
  for (char c : result.value) {
    EXPECT_TRUE(c == 'b' || c == 'd') << result.value;
  }
}

TEST(SolveConjunction, MixedExtensionConjuncts) {
  // charAt + notContains + palindrome over one 4-character string.
  const auto annealer = fast_annealer(31);
  const std::vector<strqubo::Constraint> conjuncts{
      strqubo::CharAt{4, 0, 'm'},
      strqubo::NotContains{4, "mm"},
      strqubo::Palindrome{4},
  };
  const ConjunctionResult result = solve_conjunction(conjuncts, annealer, {});
  ASSERT_TRUE(result.solved) << result.note;
  EXPECT_EQ(result.value[0], 'm');
  EXPECT_EQ(result.value[3], 'm');
  EXPECT_EQ(result.value[1], result.value[2]);
  EXPECT_EQ(result.value.find("mm"), std::string::npos);
}

TEST(StatusName, AllValues) {
  EXPECT_EQ(status_name(CheckSatStatus::kSat), "sat");
  EXPECT_EQ(status_name(CheckSatStatus::kUnsat), "unsat");
  EXPECT_EQ(status_name(CheckSatStatus::kUnknown), "unknown");
}

}  // namespace
}  // namespace qsmt::smtlib

// Differential fuzzing: the portfolio solve service against the classical
// DirectBaseline over seeded random constraints (40 cases per operation,
// 440 total). The contract checked per case:
//
//  * verdict agreement — a service kSat implies the baseline finds the
//    constraint satisfiable, and a baseline-unsatisfiable constraint is
//    never kSat from the service;
//  * exact-output agreement — operations with a unique satisfying string
//    (equality, concat, the bit-prefix length form, replace, replace-all,
//    reverse) must produce the baseline's witness verbatim, and Includes
//    must report the baseline's first-occurrence position (including
//    "absent" = nullopt). Operations with degenerate grounds (substring
//    match, indexOf, charAt, palindrome, regex membership) are held to
//    verified-verdict agreement only: any witness the service returns has
//    already passed strqubo::verify_string for the same constraint the
//    baseline solved.
//
// Every generator is seeded, annealer reads are counter-seeded, and the
// portfolio race only selects which member claims a verified verdict — so
// the verdicts themselves are deterministic and the suite can demand a
// 100% solve rate, not just non-contradiction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "baseline/classical.hpp"
#include "service/service.hpp"
#include "smtlib/driver.hpp"
#include "strqubo/constraint.hpp"
#include "util/rng.hpp"

namespace qsmt {
namespace {

constexpr std::size_t kCasesPerKind = 40;

// Small alphabet so Includes substrings occur naturally a useful fraction
// of the time (and Replace's `from` character actually appears).
std::string random_word(Xoshiro256& rng, std::size_t min_len,
                        std::size_t max_len) {
  std::string word(min_len + rng.below(max_len - min_len + 1), 'a');
  for (char& c : word) c = static_cast<char>('a' + rng.below(5));
  return word;
}

std::vector<strqubo::Constraint> equality_cases(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<strqubo::Constraint> cases;
  for (std::size_t i = 0; i < kCasesPerKind; ++i) {
    cases.push_back(strqubo::Equality{random_word(rng, 2, 6)});
  }
  return cases;
}

std::vector<strqubo::Constraint> concat_cases(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<strqubo::Constraint> cases;
  for (std::size_t i = 0; i < kCasesPerKind; ++i) {
    cases.push_back(
        strqubo::Concat{random_word(rng, 1, 3), random_word(rng, 1, 3)});
  }
  return cases;
}

std::vector<strqubo::Constraint> includes_cases(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<strqubo::Constraint> cases;
  for (std::size_t i = 0; i < kCasesPerKind; ++i) {
    const std::string text = random_word(rng, 3, 7);
    std::string substring;
    if (rng.coin()) {
      // Guaranteed-present: a random substring of the text.
      const std::size_t len = 1 + rng.below(std::min<std::size_t>(3, text.size()));
      substring = text.substr(rng.below(text.size() - len + 1), len);
    } else {
      // May or may not occur; over alphabet {a..e} both happen often.
      substring = random_word(rng, 1, 3);
    }
    cases.push_back(strqubo::Includes{text, substring});
  }
  return cases;
}

std::vector<strqubo::Constraint> length_cases(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<strqubo::Constraint> cases;
  for (std::size_t i = 0; i < kCasesPerKind; ++i) {
    // desired <= string_length always: the bit-prefix form has no
    // satisfying assignment (and no defined expected string) beyond it.
    const std::size_t string_length = 2 + rng.below(5);
    cases.push_back(
        strqubo::Length{string_length, rng.below(string_length + 1)});
  }
  return cases;
}

std::vector<strqubo::Constraint> replace_cases(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<strqubo::Constraint> cases;
  for (std::size_t i = 0; i < kCasesPerKind; ++i) {
    cases.push_back(strqubo::Replace{
        random_word(rng, 2, 6), static_cast<char>('a' + rng.below(5)),
        static_cast<char>('a' + rng.below(5))});
  }
  return cases;
}

std::vector<strqubo::Constraint> reverse_cases(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<strqubo::Constraint> cases;
  for (std::size_t i = 0; i < kCasesPerKind; ++i) {
    cases.push_back(strqubo::Reverse{random_word(rng, 2, 6)});
  }
  return cases;
}

std::vector<strqubo::Constraint> replace_all_cases(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<strqubo::Constraint> cases;
  for (std::size_t i = 0; i < kCasesPerKind; ++i) {
    cases.push_back(strqubo::ReplaceAll{
        random_word(rng, 2, 6), static_cast<char>('a' + rng.below(5)),
        static_cast<char>('a' + rng.below(5))});
  }
  return cases;
}

std::vector<strqubo::Constraint> substring_match_cases(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<strqubo::Constraint> cases;
  for (std::size_t i = 0; i < kCasesPerKind; ++i) {
    const std::size_t length = 3 + rng.below(3);
    cases.push_back(
        strqubo::SubstringMatch{length, random_word(rng, 1, 2)});
  }
  return cases;
}

std::vector<strqubo::Constraint> index_of_cases(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<strqubo::Constraint> cases;
  for (std::size_t i = 0; i < kCasesPerKind; ++i) {
    const std::size_t length = 3 + rng.below(2);
    const std::string substring = random_word(rng, 1, 2);
    cases.push_back(strqubo::IndexOf{
        length, substring, rng.below(length - substring.size() + 1)});
  }
  return cases;
}

std::vector<strqubo::Constraint> char_at_cases(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<strqubo::Constraint> cases;
  for (std::size_t i = 0; i < kCasesPerKind; ++i) {
    const std::size_t length = 2 + rng.below(4);
    cases.push_back(strqubo::CharAt{length, rng.below(length),
                                    static_cast<char>('a' + rng.below(5))});
  }
  return cases;
}

std::vector<strqubo::Constraint> palindrome_cases(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<strqubo::Constraint> cases;
  for (std::size_t i = 0; i < kCasesPerKind; ++i) {
    cases.push_back(strqubo::Palindrome{1 + rng.below(5)});
  }
  return cases;
}

std::vector<strqubo::Constraint> regex_cases(std::uint64_t seed) {
  // Pattern pool restricted to shapes the default paper-averaged class
  // encoding solves exactly: literals, '+', and Hamming-distance-1 classes
  // ('a'/'c' and 'b'/'c' differ in one ASCII bit; '[ab]' differs in two and
  // is the documented §4.11 averaging artifact — see the conformance
  // registry's regex/class_hamming2_artifact case).
  static const std::vector<std::pair<std::string, std::size_t>> kPool = {
      {"ab", 2},      {"abc", 3},    {"a+b", 2},      {"a+b", 3},
      {"ab+", 3},     {"a+", 3},     {"a+b+", 3},     {"[ac]b", 2},
      {"a[bc]", 2},   {"[ac]b+", 3}, {"[bc][ac]", 2}, {"abc+", 4},
  };
  Xoshiro256 rng(seed);
  std::vector<strqubo::Constraint> cases;
  for (std::size_t i = 0; i < kCasesPerKind; ++i) {
    const auto& [pattern, length] = kPool[rng.below(kPool.size())];
    cases.push_back(strqubo::RegexMatch{pattern, length});
  }
  return cases;
}

/// Solves every case through a fresh service and differentially checks each
/// result against DirectBaseline. `exact_text` demands the baseline witness
/// verbatim (only valid for unique-output operations).
void run_differential(const std::vector<strqubo::Constraint>& cases,
                      std::uint64_t job_seed, bool exact_text) {
  service::ServiceOptions options;
  options.num_workers = 2;
  service::SolveService service(options);
  service::JobOptions job;
  job.seed = job_seed;
  const std::vector<service::JobResult> results =
      service.solve_constraints(cases, job);
  ASSERT_EQ(results.size(), cases.size());

  const baseline::DirectBaseline direct;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE("case " + std::to_string(i) + ": " +
                 strqubo::describe(cases[i]));
    const baseline::BaselineResult expected = direct.solve(cases[i]);
    const service::JobResult& got = results[i];

    // Verdict agreement, both directions.
    if (got.status == smtlib::CheckSatStatus::kSat) {
      EXPECT_TRUE(expected.satisfied);
    }
    if (!expected.satisfied) {
      EXPECT_NE(got.status, smtlib::CheckSatStatus::kSat);
    }

    // These generators only emit satisfiable constraints, and the anneal
    // budgets are sized so the portfolio always verifies them: demand the
    // strong form, not mere non-contradiction.
    ASSERT_EQ(got.status, smtlib::CheckSatStatus::kSat);
    EXPECT_FALSE(got.winner.empty());

    if (std::holds_alternative<strqubo::Includes>(cases[i])) {
      // First-occurrence semantics make the position unique (nullopt for
      // an absent substring) — it must match the classical answer exactly.
      EXPECT_EQ(got.position, expected.position);
    } else if (exact_text) {
      ASSERT_TRUE(got.text.has_value());
      ASSERT_TRUE(expected.text.has_value());
      EXPECT_EQ(*got.text, *expected.text);
    }
  }
}

TEST(DifferentialFuzz, Equality) {
  run_differential(equality_cases(0xE0), 0xE1, /*exact_text=*/true);
}

TEST(DifferentialFuzz, Concat) {
  run_differential(concat_cases(0xC0), 0xC1, /*exact_text=*/true);
}

TEST(DifferentialFuzz, Includes) {
  run_differential(includes_cases(0x1C), 0x1D, /*exact_text=*/false);
}

TEST(DifferentialFuzz, Length) {
  run_differential(length_cases(0x10), 0x11, /*exact_text=*/true);
}

TEST(DifferentialFuzz, Replace) {
  run_differential(replace_cases(0xF0), 0xF1, /*exact_text=*/true);
}

TEST(DifferentialFuzz, Reverse) {
  run_differential(reverse_cases(0xFE), 0xFF, /*exact_text=*/true);
}

TEST(DifferentialFuzz, ReplaceAll) {
  run_differential(replace_all_cases(0xA0), 0xA1, /*exact_text=*/true);
}

TEST(DifferentialFuzz, SubstringMatch) {
  run_differential(substring_match_cases(0x50), 0x51, /*exact_text=*/false);
}

TEST(DifferentialFuzz, IndexOf) {
  run_differential(index_of_cases(0x60), 0x61, /*exact_text=*/false);
}

TEST(DifferentialFuzz, CharAt) {
  run_differential(char_at_cases(0x70), 0x71, /*exact_text=*/false);
}

TEST(DifferentialFuzz, Palindrome) {
  run_differential(palindrome_cases(0x80), 0x81, /*exact_text=*/false);
}

TEST(DifferentialFuzz, RegexMembership) {
  run_differential(regex_cases(0x90), 0x91, /*exact_text=*/false);
}

}  // namespace
}  // namespace qsmt

#include <gtest/gtest.h>

#include <limits>

#include "anneal/exact.hpp"
#include "util/rng.hpp"

namespace qsmt::anneal {
namespace {

qubo::QuboModel random_model(std::size_t n, Xoshiro256& rng) {
  qubo::QuboModel model(n);
  for (std::size_t i = 0; i < n; ++i)
    model.add_linear(i, rng.uniform() * 2.0 - 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < 0.5)
        model.add_quadratic(i, j, rng.uniform() * 2.0 - 1.0);
    }
  }
  return model;
}

// Brute force without Gray-code tricks, as an independent oracle.
double brute_force_ground(const qubo::QuboModel& model) {
  const std::size_t n = model.num_variables();
  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    std::vector<std::uint8_t> bits(n);
    for (std::size_t i = 0; i < n; ++i) bits[i] = (mask >> i) & 1;
    best = std::min(best, model.energy(bits));
  }
  return best;
}

class ExactVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactVsBruteForce, GroundEnergyMatches) {
  Xoshiro256 rng(GetParam());
  const auto model = random_model(10, rng);
  const ExactSolver solver;
  EXPECT_NEAR(solver.ground_energy(model), brute_force_ground(model), 1e-9);
}

TEST_P(ExactVsBruteForce, BestSampleAchievesGroundEnergy) {
  Xoshiro256 rng(GetParam() + 100);
  const auto model = random_model(9, rng);
  const ExactSolver solver;
  const SampleSet samples = solver.sample(model);
  ASSERT_FALSE(samples.empty());
  EXPECT_NEAR(samples.lowest_energy(), brute_force_ground(model), 1e-9);
  // Reported energies must be consistent with the model.
  for (const Sample& s : samples) {
    EXPECT_NEAR(model.energy(s.bits), s.energy, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsBruteForce,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(ExactSolver, SamplesAreSortedAscending) {
  Xoshiro256 rng(42);
  const auto model = random_model(8, rng);
  const SampleSet samples = ExactSolver().sample(model);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LE(samples[i - 1].energy, samples[i].energy);
  }
}

TEST(ExactSolver, RespectsMaxSamples) {
  Xoshiro256 rng(7);
  const auto model = random_model(10, rng);
  ExactSolverParams params;
  params.max_samples = 5;
  const SampleSet samples = ExactSolver(params).sample(model);
  EXPECT_EQ(samples.size(), 5u);
}

TEST(ExactSolver, RejectsOversizedModels) {
  qubo::QuboModel model(31);
  const ExactSolver solver;
  EXPECT_THROW(solver.sample(model), std::invalid_argument);
  EXPECT_THROW(solver.ground_energy(model), std::invalid_argument);
}

TEST(ExactSolver, CustomVariableCapIsEnforced) {
  ExactSolverParams params;
  params.max_variables = 4;
  qubo::QuboModel model(5);
  EXPECT_THROW(ExactSolver(params).sample(model), std::invalid_argument);
}

TEST(ExactSolver, ZeroMaxSamplesThrows) {
  ExactSolverParams params;
  params.max_samples = 0;
  EXPECT_THROW(ExactSolver{params}, std::invalid_argument);
}

TEST(ExactSolver, HandlesOffsetOnlyModel) {
  qubo::QuboModel model(2);
  model.set_offset(3.5);
  EXPECT_DOUBLE_EQ(ExactSolver().ground_energy(model), 3.5);
}

TEST(ExactSolver, FindsAllTiedGroundStates) {
  // Two independent unbiased pairs with an equality gadget each: the four
  // ground states are 00/11 x 00/11.
  qubo::QuboModel model(4);
  model.add_linear(0, 1.0);
  model.add_linear(1, 1.0);
  model.add_quadratic(0, 1, -2.0);
  model.add_linear(2, 1.0);
  model.add_linear(3, 1.0);
  model.add_quadratic(2, 3, -2.0);

  const SampleSet samples = ExactSolver().sample(model);
  std::size_t ground_count = 0;
  for (const Sample& s : samples) {
    if (s.energy <= 1e-12) ++ground_count;
  }
  EXPECT_EQ(ground_count, 4u);
}

TEST(ExactSolver, NameIsStable) { EXPECT_EQ(ExactSolver().name(), "exact"); }

}  // namespace
}  // namespace qsmt::anneal

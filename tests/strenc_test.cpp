#include <gtest/gtest.h>

#include "strenc/ascii7.hpp"

namespace qsmt::strenc {
namespace {

TEST(EncodeChar, PaperExampleLowercaseA) {
  // Paper §4.1.2: "a" (ASCII 97 = 1100001).
  const auto bits = encode_char('a');
  const std::array<std::uint8_t, 7> expected{1, 1, 0, 0, 0, 0, 1};
  EXPECT_EQ(bits, expected);
}

TEST(EncodeChar, MsbFirstOrder) {
  const auto bits = encode_char('\x40');  // 1000000
  EXPECT_EQ(bits[0], 1);
  for (std::size_t i = 1; i < 7; ++i) EXPECT_EQ(bits[i], 0);
}

TEST(EncodeChar, RejectsNonAscii) {
  EXPECT_THROW(encode_char(static_cast<char>(0x80)), std::invalid_argument);
  EXPECT_THROW(encode_char(static_cast<char>(0xff)), std::invalid_argument);
}

TEST(EncodeDecodeChar, RoundTripsAll128Characters) {
  for (int c = 0; c < 128; ++c) {
    const auto bits = encode_char(static_cast<char>(c));
    EXPECT_EQ(decode_char(bits), static_cast<char>(c));
  }
}

TEST(DecodeChar, ValidatesInput) {
  std::vector<std::uint8_t> short_bits(6, 0);
  EXPECT_THROW(decode_char(short_bits), std::invalid_argument);
  std::vector<std::uint8_t> bad_values(7, 2);
  EXPECT_THROW(decode_char(bad_values), std::invalid_argument);
}

TEST(EncodeString, ConcatenatesPerCharacterBlocks) {
  const auto bits = encode_string("ab");
  ASSERT_EQ(bits.size(), 14u);
  const auto a = encode_char('a');
  const auto b = encode_char('b');
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(bits[i], a[i]);
    EXPECT_EQ(bits[7 + i], b[i]);
  }
}

TEST(EncodeDecodeString, RoundTrips) {
  for (const char* s : {"", "a", "hello world", "HELLO", "123!@#"}) {
    EXPECT_EQ(decode_string(encode_string(s)), s);
  }
}

TEST(DecodeString, RejectsNonMultipleOfSeven) {
  std::vector<std::uint8_t> bits(10, 0);
  EXPECT_THROW(decode_string(bits), std::invalid_argument);
}

TEST(VariableIndex, MatchesPaperLayout) {
  // Bit i of character j is variable 7j + i.
  EXPECT_EQ(variable_index(0, 0), 0u);
  EXPECT_EQ(variable_index(0, 6), 6u);
  EXPECT_EQ(variable_index(1, 0), 7u);
  EXPECT_EQ(variable_index(3, 2), 23u);
  EXPECT_EQ(num_variables(5), 35u);
}

TEST(IsAscii7, DetectsHighBytes) {
  EXPECT_TRUE(is_ascii7("hello"));
  EXPECT_TRUE(is_ascii7(""));
  EXPECT_TRUE(is_ascii7(std::string_view("\x7f", 1)));
  EXPECT_FALSE(is_ascii7("caf\xc3\xa9"));
}

TEST(IsPrintable, CharacterClassification) {
  EXPECT_TRUE(is_printable(' '));
  EXPECT_TRUE(is_printable('~'));
  EXPECT_TRUE(is_printable('A'));
  EXPECT_FALSE(is_printable('\x1f'));
  EXPECT_FALSE(is_printable('\x7f'));
  EXPECT_FALSE(is_printable('\0'));
}

TEST(IsPrintable, StringClassification) {
  EXPECT_TRUE(is_printable("hello world!"));
  EXPECT_FALSE(is_printable(std::string_view("a\0b", 3)));
  EXPECT_TRUE(is_printable(""));
}

}  // namespace
}  // namespace qsmt::strenc

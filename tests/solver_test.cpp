#include <gtest/gtest.h>

#include "anneal/exact.hpp"
#include "anneal/simulated_annealer.hpp"
#include "strqubo/solver.hpp"

namespace qsmt::strqubo {
namespace {

anneal::SimulatedAnnealer fast_annealer(std::uint64_t seed) {
  anneal::SimulatedAnnealerParams p;
  p.num_reads = 48;
  p.num_sweeps = 192;
  p.seed = seed;
  return anneal::SimulatedAnnealer(p);
}

TEST(DecodeIncludesPosition, FirstSetBitWins) {
  EXPECT_EQ(decode_includes_position(std::vector<std::uint8_t>{0, 0, 1}), 2u);
  EXPECT_EQ(decode_includes_position(std::vector<std::uint8_t>{1, 0, 1}), 0u);
  EXPECT_EQ(decode_includes_position(std::vector<std::uint8_t>{0, 0, 0}),
            std::nullopt);
  EXPECT_EQ(decode_includes_position(std::vector<std::uint8_t>{}),
            std::nullopt);
}

class SolveEachOperation : public ::testing::TestWithParam<Constraint> {};

TEST_P(SolveEachOperation, AnnealerSatisfiesConstraint) {
  const auto annealer = fast_annealer(11);
  const StringConstraintSolver solver(annealer);
  const SolveResult result = solver.solve(GetParam());
  EXPECT_TRUE(result.satisfied) << describe(GetParam());
  if (produces_string(GetParam())) {
    ASSERT_TRUE(result.text.has_value());
  } else {
    ASSERT_TRUE(result.position.has_value());
  }
  EXPECT_GT(result.num_variables, 0u);
  EXPECT_FALSE(result.samples.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Operations, SolveEachOperation,
    ::testing::Values(Constraint{Equality{"hello"}},
                      Constraint{Concat{"hello", " world"}},
                      Constraint{SubstringMatch{6, "hi"}},
                      Constraint{Includes{"hello world", "world"}},
                      Constraint{IndexOf{6, "hi", 2}},
                      Constraint{Length{3, 2}},
                      Constraint{ReplaceAll{"hello world", 'l', 'x'}},
                      Constraint{Replace{"hello", 'e', 'a'}},
                      Constraint{Reverse{"hello"}},
                      Constraint{Palindrome{6}},
                      Constraint{RegexMatch{"a[bc]+", 5}}));

TEST(StringConstraintSolver, EqualityDecodesExactTarget) {
  const auto annealer = fast_annealer(1);
  const StringConstraintSolver solver(annealer);
  const SolveResult result = solver.solve(Equality{"hello"});
  EXPECT_EQ(result.text, "hello");
  EXPECT_DOUBLE_EQ(result.energy, expected_ground_energy(Equality{"hello"}));
}

TEST(StringConstraintSolver, IncludesReportsFirstOccurrence) {
  const auto annealer = fast_annealer(2);
  const StringConstraintSolver solver(annealer);
  const SolveResult result = solver.solve(Includes{"say hi hi", "hi"});
  EXPECT_EQ(result.position, 4u);
  EXPECT_TRUE(result.satisfied);
}

TEST(StringConstraintSolver, IncludesNoOccurrence) {
  const auto annealer = fast_annealer(3);
  const StringConstraintSolver solver(annealer);
  const SolveResult result = solver.solve(Includes{"zzzz", "ab"});
  EXPECT_EQ(result.position, std::nullopt);
  EXPECT_TRUE(result.satisfied);
}

TEST(StringConstraintSolver, OneHotRegexDecoderIgnoresSelectors) {
  BuildOptions options;
  options.regex_encoding = RegexClassEncoding::kOneHotSelectors;
  const auto annealer = fast_annealer(4);
  const StringConstraintSolver solver(annealer, options);
  const SolveResult result = solver.solve(RegexMatch{"a[bd]+", 4});
  ASSERT_TRUE(result.text.has_value());
  EXPECT_EQ(result.text->size(), 4u);
  EXPECT_TRUE(result.satisfied);
}

TEST(StringConstraintSolver, ExactSamplerGivesDeterministicModel) {
  const anneal::ExactSolver exact;
  const StringConstraintSolver solver(exact);
  const SolveResult a = solver.solve(Equality{"ab"});
  const SolveResult b = solver.solve(Equality{"ab"});
  EXPECT_EQ(a.text, b.text);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
}

TEST(StringConstraintSolver, ReportsModelStatistics) {
  const auto annealer = fast_annealer(5);
  const StringConstraintSolver solver(annealer);
  const SolveResult result = solver.solve(Palindrome{4});
  EXPECT_EQ(result.num_variables, 28u);
  EXPECT_EQ(result.num_interactions, 14u);
  EXPECT_GE(result.build_seconds, 0.0);
  EXPECT_GE(result.sample_seconds, 0.0);
}

TEST(StringConstraintSolver, BuildModelMatchesFreeFunction) {
  const auto annealer = fast_annealer(6);
  BuildOptions options;
  options.strength = 2.0;
  const StringConstraintSolver solver(annealer, options);
  EXPECT_TRUE(solver.build_model(Equality{"ab"}) ==
              build(Equality{"ab"}, options));
}

TEST(StringConstraintSolver, UnsatisfiableVerificationIsReported) {
  // A frozen (hot, zero-sweep-budget) annealer rarely hits "hello"; the
  // solver must report satisfied = false rather than lie.
  anneal::SimulatedAnnealerParams p;
  p.num_reads = 1;
  p.num_sweeps = 1;
  p.beta_hot = 1e-9;
  p.beta_cold = 1e-9;
  p.polish_with_greedy = false;
  p.seed = 99;
  const anneal::SimulatedAnnealer weak(p);
  const StringConstraintSolver solver(weak);
  const SolveResult result = solver.solve(Equality{"hello world, long"});
  ASSERT_TRUE(result.text.has_value());
  // With one unpolished read at infinite temperature the odds of decoding
  // the exact 119-bit target are negligible.
  EXPECT_FALSE(result.satisfied);
}

}  // namespace
}  // namespace qsmt::strqubo

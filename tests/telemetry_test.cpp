// qsmt::telemetry — registry merge semantics, span export, mode gating,
// and the engine-level contract that a solve emits the metric names
// documented in docs/telemetry.md.
//
// These tests mutate the process-global telemetry mode; gtest_discover_tests
// runs every TEST in its own process, so they cannot interfere with each
// other or with other suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "anneal/exact.hpp"
#include "anneal/simulated_annealer.hpp"
#include "engine/engine.hpp"
#include "qubo/qubo_model.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "service/service.hpp"
#include "smtlib/driver.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/telemetry.hpp"

namespace qsmt::telemetry {
namespace {

TEST(Registry, CounterMergesAcrossConcurrentWriters) {
  Registry registry;
  const Counter hits = registry.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&hits] {
      for (int i = 0; i < kAddsPerThread; ++i) hits.add();
    });
  }
  for (auto& w : workers) w.join();

  const Snapshot snapshot = registry.snapshot();
  const CounterStat* stat = snapshot.counter("hits");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->value,
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(Registry, HistogramMergesAcrossConcurrentWriters) {
  Registry registry;
  const Histogram latency = registry.histogram("latency", Unit::kSeconds);
  constexpr int kThreads = 6;
  constexpr int kRecordsPerThread = 5000;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&latency, t] {
      // Thread t records the constant t+1, so count/sum/min/max of the
      // merged histogram are all exactly predictable.
      for (int i = 0; i < kRecordsPerThread; ++i) {
        latency.record(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& w : workers) w.join();

  const Snapshot snapshot = registry.snapshot();
  const HistogramStat* stat = snapshot.histogram("latency");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->count,
            static_cast<std::uint64_t>(kThreads) * kRecordsPerThread);
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += static_cast<double>(t + 1) * kRecordsPerThread;
  }
  EXPECT_DOUBLE_EQ(stat->sum, expected_sum);
  EXPECT_DOUBLE_EQ(stat->min, 1.0);
  EXPECT_DOUBLE_EQ(stat->max, static_cast<double>(kThreads));
  EXPECT_DOUBLE_EQ(stat->mean(), expected_sum / stat->count);
}

TEST(Registry, GaugeIsLastWriteWinsAcrossThreads) {
  Registry registry;
  const Gauge level = registry.gauge("level");
  level.set(1.0);
  std::thread([&level] { level.set(2.0); }).join();
  // The joined thread's set happened-after the first: its sequence number
  // is higher, so the merge must pick it even though the writes live in
  // different shards.
  const GaugeStat* stat = registry.snapshot().gauge("level");
  ASSERT_NE(stat, nullptr);
  EXPECT_TRUE(stat->set);
  EXPECT_DOUBLE_EQ(stat->value, 2.0);
}

TEST(Registry, ResetClearsValuesButKeepsNames) {
  Registry registry;
  registry.counter("c").add(7);
  registry.histogram("h").record(3.0);
  registry.reset();
  const Snapshot snapshot = registry.snapshot();
  ASSERT_NE(snapshot.counter("c"), nullptr);
  EXPECT_EQ(snapshot.counter("c")->value, 0u);
  ASSERT_NE(snapshot.histogram("h"), nullptr);
  EXPECT_EQ(snapshot.histogram("h")->count, 0u);
  EXPECT_TRUE(snapshot.empty());
}

TEST(Registry, DisabledRegistryDropsWrites) {
  Registry registry;
  const Counter c = registry.counter("c");
  registry.set_enabled(false);
  c.add();
  registry.set_enabled(true);
  c.add();
  EXPECT_EQ(registry.snapshot().counter("c")->value, 1u);
}

TEST(Span, NestedSpansExportOrderedTraceEvents) {
  set_mode(Mode::kTrace);
  reset();
  {
    Span outer("outer");
    outer.arg("depth", 0.0);
    {
      Span inner("inner");
      inner.arg("depth", 1.0);
    }
  }
  const std::vector<TraceEvent> events = trace_events();
  ASSERT_EQ(events.size(), 2u);
  // Completion order: the inner span closes first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  // Proper nesting: outer starts no later and ends no earlier than inner.
  EXPECT_LE(events[1].ts_us, events[0].ts_us);
  EXPECT_GE(events[1].ts_us + events[1].dur_us,
            events[0].ts_us + events[0].dur_us);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "depth");
  EXPECT_DOUBLE_EQ(events[0].args[0].second, 1.0);

  // The same spans land in the summary histograms.
  const Snapshot snapshot = registry().snapshot();
  ASSERT_NE(snapshot.histogram("outer.seconds"), nullptr);
  EXPECT_EQ(snapshot.histogram("outer.seconds")->count, 1u);
  EXPECT_EQ(snapshot.histogram("inner.seconds")->count, 1u);
}

TEST(Span, ChromeTraceJsonIsWellFormed) {
  set_mode(Mode::kTrace);
  reset();
  {
    Span span("stage.alpha");
    span.arg("k", 2.0);
  }
  std::ostringstream out;
  write_chrome_trace(out, trace_events());
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"stage.alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"k\":2}"), std::string::npos);
}

TEST(Mode, OffEmitsNothing) {
  set_mode(Mode::kOff);
  reset();
  counter("should.not.record").add();
  histogram("also.not").record(1.0);
  { Span span("silent.stage"); }
  EXPECT_TRUE(registry().snapshot().empty());
  EXPECT_TRUE(trace_events().empty());
  std::ostringstream out;
  report(out);
  EXPECT_TRUE(out.str().empty());
}

TEST(Mode, SummaryRecordsMetricsButNoTraceEvents) {
  set_mode(Mode::kSummary);
  reset();
  counter("recorded").add();
  { Span span("timed.stage"); }
  const Snapshot snapshot = registry().snapshot();
  EXPECT_EQ(snapshot.counter("recorded")->value, 1u);
  ASSERT_NE(snapshot.histogram("timed.stage.seconds"), nullptr);
  EXPECT_EQ(snapshot.histogram("timed.stage.seconds")->count, 1u);
  EXPECT_TRUE(trace_events().empty());
}

// End-to-end contract with docs/telemetry.md: a real solve through the
// engine emits the documented per-stage and anneal metric names.
TEST(EngineTelemetry, PalindromeSolveEmitsDocumentedMetrics) {
  set_mode(Mode::kSummary);
  reset();

  anneal::SimulatedAnnealerParams params;
  params.num_reads = 32;
  params.num_sweeps = 256;
  params.seed = 7;
  const anneal::SimulatedAnnealer annealer(params);
  const engine::ScriptResult result = engine::solve_script(
      "(declare-const x String)"
      "(assert (= (str.len x) 2))"
      "(assert (qsmt.is_palindrome x))"
      "(check-sat)",
      annealer);
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kSat);

  const Snapshot snapshot = registry().snapshot();
  for (const char* name :
       {"smtlib.parse.seconds", "smtlib.compile.seconds",
        "smtlib.check_sat.seconds", "smtlib.merge_qubo.seconds",
        "smtlib.verify.seconds", "qubo.build.seconds", "qubo.build.terms",
        "anneal.sample.seconds", "anneal.read.flips", "anneal.read.sweeps",
        "anneal.read.acceptance", "anneal.read.energy"}) {
    const HistogramStat* h = snapshot.histogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GT(h->count, 0u) << name;
  }
  for (const char* name :
       {"engine.route.conjunctive", "engine.verdict.sat", "anneal.reads",
        "smtlib.check_sat.calls", "smtlib.conjunction.solved"}) {
    const CounterStat* c = snapshot.counter(name);
    ASSERT_NE(c, nullptr) << name;
    EXPECT_GT(c->value, 0u) << name;
  }
  const CounterStat* reads = snapshot.counter("anneal.reads");
  EXPECT_EQ(reads->value, params.num_reads);
}

// Same contract for the service layer: a concurrent batch through the
// worker pool emits the documented service.* names — from worker threads,
// not just the submitting one — with counts that match the workload.
TEST(ServiceTelemetry, ConcurrentBatchEmitsDocumentedMetrics) {
  set_mode(Mode::kSummary);
  reset();

  service::ServiceOptions options;
  options.num_workers = 4;
  service::SolveService service(options);
  // Repeat one constraint so the model cache records a hit, and give one
  // job an already-expired deadline so the timeout path records too.
  std::vector<strqubo::Constraint> constraints = {
      strqubo::Equality{"ab"}, strqubo::Equality{"abc"},
      strqubo::Equality{"ab"}, strqubo::Equality{"abcd"}};
  const std::vector<service::JobResult> results =
      service.solve_constraints(constraints);
  ASSERT_EQ(results.size(), constraints.size());
  service::JobOptions expired;
  expired.deadline = std::chrono::nanoseconds(1);
  service.submit(strqubo::Equality{"abcde"}, expired).get();

  const Snapshot snapshot = registry().snapshot();
  const CounterStat* submitted = snapshot.counter("service.jobs.submitted");
  ASSERT_NE(submitted, nullptr);
  EXPECT_EQ(submitted->value, 5u);
  const CounterStat* completed = snapshot.counter("service.jobs.completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->value, 5u);
  const CounterStat* timeouts = snapshot.counter("service.job.timeouts");
  ASSERT_NE(timeouts, nullptr);
  EXPECT_EQ(timeouts->value, 1u);
  const CounterStat* misses = snapshot.counter("service.model_cache.misses");
  ASSERT_NE(misses, nullptr);
  EXPECT_GT(misses->value, 0u);
  ASSERT_NE(snapshot.counter("service.model_cache.hits"), nullptr);

  for (const char* name :
       {"service.job.seconds", "service.job.wait_seconds"}) {
    const HistogramStat* h = snapshot.histogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_EQ(h->count, 5u) << name;
    EXPECT_EQ(h->unit, Unit::kSeconds) << name;
  }
  const GaugeStat* depth = snapshot.gauge("service.queue.depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_TRUE(depth->set);

  // Four solved jobs -> four winner increments across the per-member
  // counters of the default portfolio.
  std::uint64_t winner_total = 0;
  for (const CounterStat& stat : snapshot.counters) {
    if (stat.name.rfind("service.winner.", 0) == 0) {
      winner_total += stat.value;
    }
  }
  EXPECT_EQ(winner_total, 4u);
}

// Pins the batched-substrate metric names from docs/telemetry.md: a
// multi-read sample() routes onto the batched kernel and emits the
// anneal.batch.* counters with workload-matched values.
TEST(BatchTelemetry, BatchedSampleEmitsDocumentedMetrics) {
  set_mode(Mode::kSummary);
  reset();

  anneal::SimulatedAnnealerParams params;
  params.num_reads = 8;
  params.num_sweeps = 32;
  params.seed = 3;
  const anneal::SimulatedAnnealer annealer(params);
  qubo::QuboModel model(6);
  for (std::size_t i = 0; i < 6; ++i) model.add_linear(i, i % 2 ? 1.0 : -1.0);
  model.add_quadratic(0, 1, 0.5);
  annealer.sample(model);

  const Snapshot snapshot = registry().snapshot();
  const CounterStat* invocations = snapshot.counter("anneal.batch.invocations");
  ASSERT_NE(invocations, nullptr);
  EXPECT_EQ(invocations->value, 1u);
  const CounterStat* replicas = snapshot.counter("anneal.batch.replicas");
  ASSERT_NE(replicas, nullptr);
  EXPECT_EQ(replicas->value, params.num_reads);
  const CounterStat* avx2 = snapshot.counter("anneal.batch.avx2");
  if (anneal::batched_avx2_enabled()) {
    ASSERT_NE(avx2, nullptr);
    EXPECT_EQ(avx2->value, 1u);
  } else {
    // Never interned on hosts without the AVX2 path.
    EXPECT_EQ(avx2, nullptr);
  }
}

// Pins the incremental-solving counters from docs/telemetry.md. The
// workload walks every hot-resolve path through one driver: a cold first
// solve, an unchanged re-check (witness reuse), a changed assumption that
// the live witness fails (warm start over a fragment hit + miss), and
// pushed/popped re-checks the witness still satisfies (more reuse). The
// global counters must mirror the per-context deterministic stats
// exactly — that equivalence is the documented contract.
TEST(IncrementalTelemetry, HotResolveCountersMirrorContextStats) {
  set_mode(Mode::kSummary);
  reset();

  const anneal::ExactSolver exact;
  smtlib::SmtDriver driver(exact);
  driver.run_script(
      "(declare-const x String)"
      "(assert (= (str.len x) 2))"
      "(assert (str.suffixof \"b\" x))"
      "(check-sat-assuming ((str.prefixof \"a\" x)))"  // cold, two misses
      "(check-sat-assuming ((str.prefixof \"a\" x)))"  // witness reuse
      "(check-sat-assuming ((str.prefixof \"c\" x)))"  // "ab" fails: warm
      "(push)"
      "(assert (str.prefixof \"c\" x))"
      "(check-sat)"  // the depth-0 witness "cb" satisfies: reuse
      "(pop)"
      "(check-sat)");  // still satisfied after the pop: reuse

  const smtlib::IncrementalStats stats = driver.solve_context().stats();
  const smtlib::FragmentCache::Stats fragments =
      driver.solve_context().fragments().stats();
  EXPECT_GE(stats.cold_starts, 1u);
  EXPECT_GE(stats.witness_reuses, 2u);
  EXPECT_GE(stats.warm_starts, 1u);
  EXPECT_GE(fragments.hits, 1u);
  EXPECT_GE(fragments.misses, 1u);

  const Snapshot snapshot = registry().snapshot();
  const struct {
    const char* name;
    std::uint64_t expected;
  } pins[] = {
      {"incremental.fragment.hits", fragments.hits},
      {"incremental.fragment.misses", fragments.misses},
      {"incremental.witness.reuse", stats.witness_reuses},
      {"incremental.warm.starts", stats.warm_starts},
      {"incremental.warm.hits", stats.warm_hits},
      {"incremental.cold.starts", stats.cold_starts},
  };
  for (const auto& pin : pins) {
    const CounterStat* counter = snapshot.counter(pin.name);
    if (pin.expected == 0) {
      // A counter that never fired is simply not interned.
      if (counter != nullptr) {
        EXPECT_EQ(counter->value, 0u) << pin.name;
      }
      continue;
    }
    ASSERT_NE(counter, nullptr) << pin.name;
    EXPECT_EQ(counter->value, pin.expected) << pin.name;
  }
}

// Re-solving a certified-unsat disjunction through one SolveContext loads
// the exact theory lemmas remembered by the first DPLL(T) run back into
// the second, and the retention counter mirrors the context stat.
TEST(IncrementalTelemetry, RetainedTheoryLemmasEmitClauseCounter) {
  set_mode(Mode::kSummary);
  reset();

  const anneal::ExactSolver exact;
  smtlib::SolveContext context;
  const std::string script =
      "(declare-const x String)"
      "(assert (= (str.len x) 1))"
      "(assert (or (= (str.len x) 2) (= (str.len x) 3)))"
      "(check-sat)";
  const engine::ScriptResult first =
      engine::solve_script(script, exact, {}, /*force_dpllt=*/true, &context);
  EXPECT_EQ(first.status, smtlib::CheckSatStatus::kUnsat);
  const engine::ScriptResult second =
      engine::solve_script(script, exact, {}, /*force_dpllt=*/true, &context);
  EXPECT_EQ(second.status, smtlib::CheckSatStatus::kUnsat);

  const Snapshot snapshot = registry().snapshot();
  const CounterStat* retained =
      snapshot.counter("incremental.clauses.retained");
  ASSERT_NE(retained, nullptr);
  EXPECT_GT(retained->value, 0u);
  EXPECT_EQ(retained->value, context.stats().clauses_retained);
}

// Same pin for the service fusion counters: a deterministic fused batch
// (single worker parked by a blocking member factory while structure-
// sharing siblings queue up) emits service.batch.* with exact values.
TEST(BatchTelemetry, ServiceFusionEmitsDocumentedMetrics) {
  set_mode(Mode::kSummary);
  reset();

  auto entered = std::make_shared<std::atomic<int>>(0);
  auto released = std::make_shared<std::atomic<bool>>(false);
  service::PortfolioMember gate;
  gate.name = "gate";
  gate.make = [entered, released](
                  std::uint64_t,
                  CancelToken) -> std::unique_ptr<anneal::Sampler> {
    if (entered->fetch_add(1) == 0) {
      while (!released->load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    throw std::runtime_error("gate");
  };

  service::ServiceOptions options;
  options.num_workers = 1;
  options.portfolio.push_back(std::move(gate));
  options.portfolio.push_back(service::simulated_annealing_member("sa"));
  service::SolveService service(options);

  std::vector<std::future<service::JobResult>> futures;
  futures.push_back(service.submit(strqubo::Equality{"ab"}));
  while (entered->load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  futures.push_back(service.submit(strqubo::Equality{"ab"}));
  futures.push_back(service.submit(strqubo::Equality{"ab"}));
  released->store(true);
  for (auto& future : futures) {
    EXPECT_EQ(future.get().status, smtlib::CheckSatStatus::kSat);
  }

  const Snapshot snapshot = registry().snapshot();
  const CounterStat* invocations =
      snapshot.counter("service.batch.invocations");
  ASSERT_NE(invocations, nullptr);
  EXPECT_EQ(invocations->value, 1u);
  const CounterStat* fused = snapshot.counter("service.batch.fused_jobs");
  ASSERT_NE(fused, nullptr);
  EXPECT_EQ(fused->value, 3u);
}

// Same pin for the daemon layer: one socket session through qsmt-server's
// full request path (frame decode -> session -> admission -> service)
// emits the server.* names documented in docs/telemetry.md, including the
// admission-reject counter when the gate is saturated.
TEST(ServerTelemetry, SocketSessionEmitsDocumentedMetrics) {
  set_mode(Mode::kSummary);
  reset();

  server::ServerOptions options;
  options.service.num_workers = 2;
  options.service.portfolio = {service::exact_member("exact")};
  options.max_inflight = 1;
  options.max_waiting = 0;  // No line: a busy gate rejects instantly.
  server::Server node(options);
  const std::uint16_t port = node.listen(0);
  node.start();

  server::Client client;
  client.connect(port);
  EXPECT_EQ(client.request("(declare-const x String)"
                           "(assert (= x \"ab\"))(check-sat)"),
            "sat\n");
  // Saturate the admission gate from outside, then watch the session's
  // next check-sat bounce off it.
  ASSERT_EQ(node.gate().acquire(), server::AdmissionGate::Outcome::kAdmitted);
  const std::string rejected = client.request("(check-sat)");
  EXPECT_NE(rejected.find("server overloaded"), std::string::npos);
  node.gate().release();
  client.request("(exit)");
  node.shutdown();

  const Snapshot snapshot = registry().snapshot();
  for (const auto& [name, value] :
       {std::pair<const char*, std::uint64_t>{"server.sessions.opened", 1},
        {"server.sessions.closed", 1},
        {"server.admission.rejects", 1}}) {
    const CounterStat* stat = snapshot.counter(name);
    ASSERT_NE(stat, nullptr) << name;
    EXPECT_EQ(stat->value, value) << name;
  }
  const CounterStat* commands = snapshot.counter("server.commands");
  ASSERT_NE(commands, nullptr);
  EXPECT_GE(commands->value, 3u);
  const CounterStat* frames = snapshot.counter("server.frames");
  ASSERT_NE(frames, nullptr);
  EXPECT_GE(frames->value, 3u);
  for (const char* name : {"server.sessions.active", "server.queue.depth"}) {
    const GaugeStat* gauge = snapshot.gauge(name);
    ASSERT_NE(gauge, nullptr) << name;
    EXPECT_TRUE(gauge->set) << name;
  }
  // Only the dispatched (admitted) check-sat reaches the solve timer; the
  // presolved and rejected ones never do.
  const HistogramStat* seconds = snapshot.histogram("server.checksat.seconds");
  ASSERT_NE(seconds, nullptr);
  EXPECT_EQ(seconds->count, 1u);
  EXPECT_EQ(seconds->unit, Unit::kSeconds);
}

TEST(ServiceTelemetry, OffModeIsSilentFromWorkerThreads) {
  set_mode(Mode::kOff);
  reset();
  service::ServiceOptions options;
  options.num_workers = 2;
  service::SolveService service(options);
  const std::vector<strqubo::Constraint> constraints = {
      strqubo::Equality{"ab"}, strqubo::Reverse{"abc"}};
  const std::vector<service::JobResult> results =
      service.solve_constraints(constraints);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status, smtlib::CheckSatStatus::kSat);
  // Worker threads ran real solves; with telemetry off none of them may
  // have interned or recorded anything.
  EXPECT_TRUE(registry().snapshot().empty());
}

}  // namespace
}  // namespace qsmt::telemetry

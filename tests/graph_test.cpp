#include <gtest/gtest.h>

#include "graph/chimera.hpp"
#include "graph/graph.hpp"

namespace qsmt::graph {
namespace {

TEST(Graph, StartsEmpty) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, AddEdgeGrowsNodeCount) {
  Graph g;
  g.add_edge(0, 5);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, SelfLoopThrows) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(Graph, DuplicateEdgeDetectedAtFinalize) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);  // Same undirected edge.
  EXPECT_THROW(g.finalize(), std::invalid_argument);
}

TEST(Graph, QueriesRequireFinalize) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.neighbors(0), std::invalid_argument);
  EXPECT_THROW(g.has_edge(0, 1), std::invalid_argument);
  EXPECT_THROW(g.degree(0), std::invalid_argument);
  g.finalize();
  EXPECT_NO_THROW(g.neighbors(0));
}

TEST(Graph, AddEdgeAfterFinalizeThrows) {
  Graph g(3);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_THROW(g.add_edge(1, 2), std::invalid_argument);
}

TEST(Graph, NeighborsAreSortedBothDirections) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(0, 2);
  g.add_edge(2, 1);
  g.finalize();
  const auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0u);
  EXPECT_EQ(nb[1], 1u);
  EXPECT_EQ(nb[2], 4u);
  EXPECT_EQ(g.neighbors(4).size(), 1u);
  EXPECT_EQ(g.neighbors(4)[0], 2u);
}

TEST(Graph, HasEdgeAndDegree) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_FALSE(g.has_edge(0, 99));
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(Graph, IsolatedNodesAllowed) {
  Graph g(10);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.degree(9), 0u);
}

// --- Chimera ---------------------------------------------------------------

TEST(Chimera, NodeCount) {
  // C(m, n, t) has 2 t m n qubits.
  EXPECT_EQ(make_chimera(1, 1, 4).num_nodes(), 8u);
  EXPECT_EQ(make_chimera(2, 3, 4).num_nodes(), 48u);
  EXPECT_EQ(make_chimera(16, 16, 4).num_nodes(), 2048u);  // DW2000Q scale.
}

TEST(Chimera, EdgeCount) {
  // Intra-cell: t^2 per cell. Inter: t per vertical and horizontal border.
  // C(m, n, t): m n t^2 + (m-1) n t + m (n-1) t.
  const auto count = [](std::size_t m, std::size_t n, std::size_t t) {
    return m * n * t * t + (m - 1) * n * t + m * (n - 1) * t;
  };
  EXPECT_EQ(make_chimera(1, 1, 4).num_edges(), count(1, 1, 4));
  EXPECT_EQ(make_chimera(2, 2, 4).num_edges(), count(2, 2, 4));
  EXPECT_EQ(make_chimera(3, 2, 2).num_edges(), count(3, 2, 2));
}

TEST(Chimera, SingleCellIsCompleteBipartite) {
  const Graph g = make_chimera(1, 1, 4);
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 4; b < 8; ++b) {
      EXPECT_TRUE(g.has_edge(a, b));
    }
    for (std::size_t b = 0; b < 4; ++b) {
      if (a != b) {
        EXPECT_FALSE(g.has_edge(a, b));  // No intra-shore edges.
      }
    }
  }
}

TEST(Chimera, CoordinateRoundTrip) {
  const std::size_t cols = 3;
  const std::size_t shore = 4;
  for (std::size_t id = 0; id < 2 * 3 * cols * shore; ++id) {
    const ChimeraCoord coord = chimera_from_linear(id, cols, shore);
    EXPECT_EQ(chimera_to_linear(coord, cols, shore), id);
    EXPECT_LT(coord.side, 2u);
    EXPECT_LT(coord.offset, shore);
  }
}

TEST(Chimera, VerticalCouplersConnectRows) {
  const Graph g = make_chimera(2, 1, 2);
  // Vertical-side qubit (0,0,0,k) couples to (1,0,0,k).
  const auto a = chimera_to_linear({0, 0, 0, 0}, 1, 2);
  const auto b = chimera_to_linear({1, 0, 0, 0}, 1, 2);
  EXPECT_TRUE(g.has_edge(a, b));
  // Horizontal-side qubits do not couple across rows.
  const auto c = chimera_to_linear({0, 0, 1, 0}, 1, 2);
  const auto d = chimera_to_linear({1, 0, 1, 0}, 1, 2);
  EXPECT_FALSE(g.has_edge(c, d));
}

TEST(Chimera, HorizontalCouplersConnectColumns) {
  const Graph g = make_chimera(1, 2, 2);
  const auto a = chimera_to_linear({0, 0, 1, 1}, 2, 2);
  const auto b = chimera_to_linear({0, 1, 1, 1}, 2, 2);
  EXPECT_TRUE(g.has_edge(a, b));
}

TEST(Chimera, RejectsZeroDimensions) {
  EXPECT_THROW(make_chimera(0, 1, 4), std::invalid_argument);
  EXPECT_THROW(make_chimera(1, 0, 4), std::invalid_argument);
  EXPECT_THROW(make_chimera(1, 1, 0), std::invalid_argument);
}

TEST(Chimera, MaxDegreeIsShorePlusTwo) {
  const Graph g = make_chimera(3, 3, 4);
  std::size_t max_degree = 0;
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    max_degree = std::max(max_degree, g.degree(v));
  }
  EXPECT_EQ(max_degree, 6u);  // t intra + 2 inter.
}

}  // namespace
}  // namespace qsmt::graph

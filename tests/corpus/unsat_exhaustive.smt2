; Certified refutation route 4: no conjunct has a unique witness, bounded
; exhaustive search proves the mirror conflict.
; expect: unsat
; expect-note: exhaustive
(declare-const x String)
(assert (= (str.len x) 2))
(assert (qsmt.is_palindrome x))
(assert (= (str.at x 0) "a"))
(assert (= (str.at x 1) "b"))
(check-sat)

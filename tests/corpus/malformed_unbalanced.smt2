; expect-throw:
(declare-const x String)
(assert (= x "ab")

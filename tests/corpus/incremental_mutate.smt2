; Mutate-one-conjunct re-solves: each pop/push swaps a single prefix
; constraint while the suffix conjunct's compiled fragment is reused from
; the session cache. All three witnesses are forced.
; expect: sat
; expect: sat
; expect: sat
; expect-model: ca
(declare-const x String)
(assert (= (str.len x) 2))
(assert (str.suffixof "a" x))
(push)
(assert (str.prefixof "a" x))
(check-sat)
(pop)
(push)
(assert (str.prefixof "b" x))
(check-sat)
(pop)
(push)
(assert (str.prefixof "c" x))
(check-sat)
(get-model)

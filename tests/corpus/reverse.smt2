; §4.9 reverse; comment noise with )( unbalanced "quotes to stress the lexer.
; expect: sat
; expect-model: cba
(declare-const x String)
(assert (= x (str.rev "abc")))
(check-sat)
(get-model)

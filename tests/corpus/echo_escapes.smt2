; Echo output, embedded "" quote escapes, and a model containing a quote.
; expect: sat
; expect-contains: hello from corpus
; expect-model: a"b
(declare-const x String)
(echo "hello from corpus")
(assert (= x "a""b"))
(check-sat)
(get-model)

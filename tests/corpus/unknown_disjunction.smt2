; Boolean structure is outside the conjunctive driver's fragment.
; expect: unknown
(declare-const x String)
(assert (or (= x "a") (= x "b")))
(check-sat)

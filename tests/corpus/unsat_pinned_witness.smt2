; Certified refutation route 3: "ab" is the equality's unique witness and
; contains no "z".
; expect: unsat
; expect-note: only string
(declare-const x String)
(assert (= (str.len x) 2))
(assert (= x "ab"))
(assert (str.contains x "z"))
(check-sat)

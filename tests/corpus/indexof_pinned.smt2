; §4.5 indexOf joined with charAt pins: every position forced, unique model.
; expect: sat
; expect-model: abc
(declare-const x String)
(assert (= (str.len x) 3))
(assert (= (str.indexof x "b" 0) 1))
(assert (= (str.at x 0) "a"))
(assert (= (str.at x 2) "c"))
(check-sat)
(get-model)

; Popping below the bottom of the assertion stack is well-formed SMT-LIB
; misuse: the reply is an (error ...) S-expression, the session survives,
; and the next check-sat still answers.
; expect: sat
; expect: sat
; expect-contains: (error "pop below the bottom of the assertion stack")
(declare-const x String)
(assert (= x "ab"))
(check-sat)
(pop)
(check-sat)

; Warm tower: a growing incremental chain where every hot re-solve may
; reuse the previous witness or warm-start from it — shortcuts that can
; only accelerate the pinned verdicts, never change them. The final model
; is forced (all three positions pinned by prefix/suffix/char-at).
; expect: sat
; expect: sat
; expect: sat
; expect: unsat
; expect: sat
; expect-model: aba
(declare-const x String)
(assert (= (str.len x) 3))
(assert (str.prefixof "a" x))
(check-sat)
(assert (str.suffixof "a" x))
(check-sat)
(push)
(assert (= (str.at x 1) "b"))
(check-sat)
(push)
(assert (= x "aaa"))
(check-sat)
(pop)
(check-sat)
(get-model)

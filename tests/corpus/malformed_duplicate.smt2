; expect-throw: duplicate
(declare-const x String)
(declare-const x Int)

; Incremental push/pop tower: each frame narrows the model, the pinned
; contradiction is certified unsat, and popping restores satisfiability.
; The final query's witness is forced (prefix+suffix pin both characters)
; so driver and server transcripts agree byte for byte.
; expect: sat
; expect: sat
; expect: unsat
; expect: sat
; expect-model: ab
(declare-const x String)
(assert (= (str.len x) 2))
(assert (str.prefixof "a" x))
(check-sat)
(push)
(assert (str.suffixof "b" x))
(check-sat)
(push)
(assert (= x "cc"))
(check-sat)
(pop 2)
(push)
(assert (str.suffixof "b" x))
(check-sat)
(get-model)

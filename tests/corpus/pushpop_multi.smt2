; Three verdicts from one script: the pushed contradiction is certified
; unsat (pinned witness), and the pop restores satisfiability.
; expect: sat
; expect: unsat
; expect: sat
; expect-model: aa
(declare-const x String)
(assert (= x "aa"))
(check-sat)
(push)
(assert (= x "bb"))
(check-sat)
(pop)
(check-sat)

; §4.10 palindrome: the mirror gadget forces position 2 to copy position 0.
; expect: sat
; expect-model: aba
(declare-const x String)
(assert (= (str.len x) 3))
(assert (qsmt.is_palindrome x))
(assert (= (str.at x 0) "a"))
(assert (= (str.at x 1) "b"))
(check-sat)

; Certified refutation route 1: conjuncts pin different lengths.
; expect: unsat
; expect-note: certified
(declare-const x String)
(assert (= x "ab"))
(assert (= x "abc"))
(check-sat)

; Certified refutation route 2: "ab" cannot be matched by one character.
; expect: unsat
; expect-note: regex
(declare-const x String)
(assert (= (str.len x) 1))
(assert (str.in_re x (re.++ (str.to_re "a") (str.to_re "b"))))
(check-sat)

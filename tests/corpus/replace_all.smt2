; §4.7 replaceAll rewrites every occurrence.
; expect: sat
; expect-model: bbb
(declare-const x String)
(assert (= x (qsmt.replace_all "aba" "a" "b")))
(check-sat)

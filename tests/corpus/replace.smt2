; §4.8 replace rewrites only the first occurrence.
; expect: sat
; expect-model: cba
(declare-const x String)
(assert (= x (str.replace "aba" "a" "c")))
(check-sat)

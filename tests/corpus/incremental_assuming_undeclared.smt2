; check-sat-assuming over an undeclared symbol draws an (error ...) reply
; instead of a verdict; the session survives and later checks answer.
; expect: sat
; expect-contains: (error "check-sat-assuming: undeclared symbol 'y'")
(declare-const x String)
(assert (= x "ab"))
(check-sat-assuming ((= y "b")))
(check-sat)

; check-sat-assuming: assumptions are extra conjuncts for one check only —
; the contradiction in the middle leaves no trace on the next query. Every
; sat witness is forced, keeping server/driver parity exact.
; expect: sat
; expect: unsat
; expect: sat
; expect-model: ac
(declare-const x String)
(assert (= (str.len x) 2))
(assert (str.prefixof "a" x))
(check-sat-assuming ((str.suffixof "b" x)))
(check-sat-assuming ((= x "cb")))
(check-sat-assuming ((str.suffixof "c" x)))
(get-model)

; A falsified ground fact refutes the script before any solving.
; expect: unsat
; expect-note: falsified
(assert (= "a" "b"))
(check-sat)

; prefixof/suffixof both lower to indexOf windows; all positions pinned.
; expect: sat
; expect-model: abz
(declare-const x String)
(assert (= (str.len x) 3))
(assert (str.prefixof "ab" x))
(assert (str.suffixof "z" x))
(check-sat)

; §4.2 concatenation: the witness is lhs + rhs.
; expect: sat
; expect-model: abc
(declare-const x String)
(assert (= x (str.++ "ab" "c")))
(check-sat)
(get-model)

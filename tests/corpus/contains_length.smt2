; §4.3 contains with the mandatory length companion. The overwrite witness
; (later start positions win) makes the ground state unique: bbc.
; expect: sat
; expect-model: bbc
(declare-const x String)
(assert (= (str.len x) 3))
(assert (str.contains x "bc"))
(check-sat)

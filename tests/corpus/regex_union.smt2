; §4.11 regex a[bc]+ via re.++ / re.+ / re.union. The class members differ
; in one bit, so the paper-averaged encoding is exact here.
; expect: sat
(declare-const x String)
(assert (= (str.len x) 3))
(assert (str.in_re x (re.++ (str.to_re "a")
                            (re.+ (re.union (str.to_re "b")
                                            (str.to_re "c"))))))
(check-sat)

; §4.1 equality through the full SMT-LIB pipeline.
; expect: sat
; expect-model: ab
(set-logic QF_S)
(set-info :source |conformance corpus|)
(declare-const x String)
(assert (= x "ab"))
(check-sat)
(get-model)

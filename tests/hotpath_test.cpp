// Tests for the annealing hot-path overhaul: the screened exp-free
// Metropolis accept, the bulk-uniform sweep kernel, thread-count
// determinism, and the adjacency sampling overloads.
#include <gtest/gtest.h>

#include <omp.h>

#include <cmath>
#include <span>
#include <vector>

#include "anneal/context.hpp"
#include "anneal/greedy.hpp"
#include "anneal/metropolis.hpp"
#include "anneal/reverse.hpp"
#include "anneal/schedule.hpp"
#include "anneal/simulated_annealer.hpp"
#include "qubo/adjacency.hpp"
#include "qubo/qubo_model.hpp"
#include "strqubo/builders.hpp"
#include "util/rng.hpp"

namespace qsmt::anneal {
namespace {

qubo::QuboModel random_model(std::size_t n, double density, Xoshiro256& rng) {
  qubo::QuboModel model(n);
  for (std::size_t i = 0; i < n; ++i)
    model.add_linear(i, rng.uniform() * 2.0 - 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < density)
        model.add_quadratic(i, j, rng.uniform() * 2.0 - 1.0);
    }
  }
  return model;
}

bool same_sample_sets(const SampleSet& a, const SampleSet& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k].energy != b[k].energy) return false;
    if (a[k].bits != b[k].bits) return false;
    if (a[k].num_occurrences != b[k].num_occurrences) return false;
  }
  return true;
}

// The screened compare must reproduce u < exp(-x) EXACTLY — the bounds only
// ever screen; they never decide a case where they disagree with std::exp.
TEST(MetropolisAccept, MatchesExactExpOnPinnedStream) {
  Xoshiro256 rng(2024, 0);
  for (int k = 0; k < 200000; ++k) {
    // Mix magnitudes: dense around the ambiguity band (x near 0..4) plus
    // heavy tails, and exercise the x <= 0 always-accept branch.
    const double scale = k % 3 == 0 ? 0.5 : (k % 3 == 1 ? 4.0 : 50.0);
    const double x = (rng.uniform() * 2.0 - 0.5) * scale;
    const double u = rng.uniform();
    const bool exact = x <= 0.0 || u < std::exp(-x);
    ASSERT_EQ(detail::metropolis_accept(x, u), exact)
        << "x=" << x << " u=" << u;
  }
}

TEST(MetropolisAccept, EdgeCases) {
  EXPECT_TRUE(detail::metropolis_accept(0.0, 0.999999));   // exp(0) = 1 > u
  EXPECT_TRUE(detail::metropolis_accept(-3.0, 0.999999));  // downhill
  EXPECT_TRUE(detail::metropolis_accept(700.0, 0.0));      // u = 0 < exp(-x)
  EXPECT_FALSE(detail::metropolis_accept(1e6, 1e-300));    // exp underflows
}

// The sweep kernel's accepted-flip decisions must match an oracle kernel
// that consumes the identical uniform stream but decides every move with
// the textbook u < exp(-beta * delta) test.
TEST(SweepKernel, MatchesExpOracleDecisions) {
  Xoshiro256 model_rng(7, 0);
  const qubo::QuboModel model = random_model(24, 0.3, model_rng);
  const qubo::QuboAdjacency adjacency(model);
  const std::size_t n = adjacency.num_variables();
  const BetaRange range = default_beta_range(adjacency);
  const std::vector<double> betas =
      make_schedule(range.hot, range.cold, 64, Interpolation::kGeometric);

  for (std::uint64_t read = 0; read < 8; ++read) {
    // Kernel under test.
    AnnealContext ctx;
    ctx.prepare(n);
    Xoshiro256 rng(99, read);
    for (auto& b : ctx.bits) b = rng.coin() ? 1 : 0;
    detail::anneal_read(adjacency, betas, rng, ctx);

    // Oracle: same uniform stream, same early-exit rule, per-move exp.
    Xoshiro256 oracle_rng(99, read);
    std::vector<std::uint8_t> bits(n);
    for (auto& b : bits) b = oracle_rng.coin() ? 1 : 0;
    std::vector<double> field(n);
    std::vector<double> uniforms(n);
    for (std::size_t i = 0; i < n; ++i)
      field[i] = adjacency.local_field(bits, i);
    for (std::size_t s = 0; s < betas.size(); ++s) {
      for (std::size_t i = 0; i < n; ++i) uniforms[i] = oracle_rng.uniform();
      std::size_t flips = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double delta = bits[i] ? -field[i] : field[i];
        if (delta <= 0.0 || uniforms[i] < std::exp(-betas[s] * delta)) {
          const double step = bits[i] ? -1.0 : 1.0;
          bits[i] ^= 1u;
          ++flips;
          for (const auto& nb : adjacency.neighbors(i)) {
            field[nb.index] += nb.coefficient * step;
          }
        }
      }
      if (flips == 0) break;
    }

    ASSERT_EQ(std::vector<std::uint8_t>(ctx.bits.begin(), ctx.bits.end()),
              bits)
        << "trajectory diverged on read " << read;
  }
}

// Oracle identical to the kernel's acceptance rule but with no early exit
// anywhere: every sweep of `betas` executes. Consumes one uniform per
// variable per sweep, like the kernel.
std::vector<std::uint8_t> full_length_oracle(
    const qubo::QuboAdjacency& adjacency, std::span<const double> betas,
    Xoshiro256& rng, std::vector<std::uint8_t> bits) {
  const std::size_t n = adjacency.num_variables();
  std::vector<double> field(n);
  std::vector<double> uniforms(n);
  for (std::size_t i = 0; i < n; ++i) field[i] = adjacency.local_field(bits, i);
  for (const double beta : betas) {
    for (std::size_t i = 0; i < n; ++i) uniforms[i] = rng.uniform();
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = bits[i] ? -field[i] : field[i];
      if (delta <= 0.0 || uniforms[i] < std::exp(-beta * delta)) {
        const double step = bits[i] ? -1.0 : 1.0;
        bits[i] ^= 1u;
        for (const auto& nb : adjacency.neighbors(i)) {
          field[nb.index] += nb.coefficient * step;
        }
      }
    }
  }
  return bits;
}

// Regression for the reverse-annealing degeneration: a read seeded with a
// polished local minimum under a V-shaped (cold → hot → cold) schedule used
// to hit a zero-flip sweep on the cold opening leg and return the initial
// state without ever reheating. The early exit must stay disarmed until the
// schedule's non-decreasing suffix, so the kernel's trajectory must match a
// no-early-exit oracle on the same uniform stream.
TEST(SweepKernel, ReverseScheduleRunsThroughTheReheatDip) {
  Xoshiro256 model_rng(11, 0);
  const qubo::QuboModel model = random_model(24, 0.3, model_rng);
  const qubo::QuboAdjacency adjacency(model);
  const std::size_t n = adjacency.num_variables();

  // Deeply cold endpoints: the opening sweeps accept essentially nothing,
  // which is exactly the zero-flip condition that used to abort the read.
  const std::vector<double> betas = make_reverse_schedule(50.0, 0.05, 64);

  std::size_t total_flips = 0;
  for (std::uint64_t read = 0; read < 8; ++read) {
    // A polished local-minimum start, as ReverseAnnealer provides.
    std::vector<std::uint8_t> start(n);
    Xoshiro256 seed_rng(123, read);
    for (auto& b : start) b = seed_rng.coin() ? 1 : 0;
    detail::greedy_descend(adjacency, start);

    AnnealContext ctx;
    ctx.prepare(n);
    Xoshiro256 rng(17, read);
    std::copy(start.begin(), start.end(), ctx.bits.begin());
    total_flips += detail::anneal_read(adjacency, betas, rng, ctx);

    Xoshiro256 oracle_rng(17, read);
    ASSERT_EQ(std::vector<std::uint8_t>(ctx.bits.begin(), ctx.bits.end()),
              full_length_oracle(adjacency, betas, oracle_rng, start))
        << "trajectory diverged on read " << read;
  }
  // The reheat dip must actually have moved the state: a kernel that
  // returned the initial local minima untouched would report zero flips.
  EXPECT_GT(total_flips, 0u);
}

// With the early exit disarmed, every sweep of a monotone schedule must
// execute even after the state freezes — distribution-sampling callers get
// full-length reads.
TEST(SweepKernel, EarlyExitDisabledRunsFullSchedule) {
  Xoshiro256 model_rng(7, 0);
  const qubo::QuboModel model = random_model(24, 0.3, model_rng);
  const qubo::QuboAdjacency adjacency(model);
  const std::size_t n = adjacency.num_variables();
  const BetaRange range = default_beta_range(adjacency);
  const std::vector<double> betas =
      make_schedule(range.hot, range.cold * 100.0, 96,
                    Interpolation::kGeometric);

  for (std::uint64_t read = 0; read < 4; ++read) {
    AnnealContext ctx;
    ctx.prepare(n);
    Xoshiro256 rng(41, read);
    for (auto& b : ctx.bits) b = rng.coin() ? 1 : 0;
    std::vector<std::uint8_t> start(ctx.bits.begin(), ctx.bits.end());
    detail::anneal_read(adjacency, betas, rng, ctx,
                        /*allow_early_exit=*/false);

    // Replay the identical stream: the seeding coin flips line up because
    // the oracle start state is regenerated the same way.
    Xoshiro256 oracle_rng(41, read);
    std::vector<std::uint8_t> oracle_start(n);
    for (auto& b : oracle_start) b = oracle_rng.coin() ? 1 : 0;
    ASSERT_EQ(oracle_start, start);
    ASSERT_EQ(std::vector<std::uint8_t>(ctx.bits.begin(), ctx.bits.end()),
              full_length_oracle(adjacency, betas, oracle_rng, oracle_start))
        << "trajectory diverged on read " << read;
  }
}

// Fixed-seed sampling must be bit-identical regardless of the OpenMP
// thread count: reads own counter-seeded streams, so the schedule of reads
// onto threads must not leak into the output.
TEST(SimulatedAnnealerDeterminism, IdenticalAcrossThreadCounts) {
  Xoshiro256 model_rng(13, 0);
  const qubo::QuboModel model = random_model(40, 0.2, model_rng);

  SimulatedAnnealerParams p;
  p.num_reads = 16;
  p.num_sweeps = 96;
  p.seed = 5;
  const SimulatedAnnealer annealer(p);

  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  const SampleSet serial = annealer.sample(model);
  omp_set_num_threads(4);
  const SampleSet parallel = annealer.sample(model);
  omp_set_num_threads(saved);

  EXPECT_TRUE(same_sample_sets(serial, parallel));
}

// The prebuilt-adjacency overload must produce exactly the samples the
// model overload does — it is the same computation minus the CSR rebuild.
TEST(SimulatedAnnealerDeterminism, AdjacencyOverloadMatchesModelOverload) {
  const qubo::QuboModel model = strqubo::build_palindrome(6);
  const qubo::QuboAdjacency adjacency(model);

  SimulatedAnnealerParams p;
  p.num_reads = 12;
  p.num_sweeps = 64;
  p.seed = 21;
  const SimulatedAnnealer annealer(p);

  EXPECT_TRUE(
      same_sample_sets(annealer.sample(model), annealer.sample(adjacency)));
}

// Thread-local context reuse must not leak state between models of
// different sizes: sampling A, then a larger B, then A again must
// reproduce the first result exactly.
TEST(SimulatedAnnealerDeterminism, ContextReuseAcrossModelsIsClean) {
  Xoshiro256 rng_a(3, 0);
  Xoshiro256 rng_b(4, 0);
  const qubo::QuboModel small = random_model(10, 0.4, rng_a);
  const qubo::QuboModel large = random_model(64, 0.1, rng_b);

  SimulatedAnnealerParams p;
  p.num_reads = 8;
  p.num_sweeps = 64;
  p.seed = 9;
  const SimulatedAnnealer annealer(p);

  const SampleSet first = annealer.sample(small);
  annealer.sample(large);
  const SampleSet again = annealer.sample(small);
  EXPECT_TRUE(same_sample_sets(first, again));
}

// The quench schedule's head must match the plain schedule (the
// exploration segment is untouched) and its tail must keep cooling
// monotonically past beta_cold.
TEST(QuenchSchedule, HeadMatchesPlainTailCoolsFurther) {
  const std::size_t sweeps = 100;
  const auto quench = make_quench_schedule(0.2, 4.0, sweeps,
                                           Interpolation::kGeometric);
  ASSERT_EQ(quench.size(), sweeps);
  const std::size_t head = 40;  // default split = 0.4
  const auto plain =
      make_schedule(0.2, 4.0, head, Interpolation::kGeometric);
  for (std::size_t s = 0; s < head; ++s) {
    EXPECT_DOUBLE_EQ(quench[s], plain[s]);
  }
  EXPECT_DOUBLE_EQ(quench[head], 4.0);
  for (std::size_t s = head + 1; s < sweeps; ++s) {
    EXPECT_GT(quench[s], quench[s - 1]);
  }
  EXPECT_DOUBLE_EQ(quench.back(), 4.0 * 32.0);

  // Degenerate sizes fall back to the plain schedule.
  EXPECT_EQ(
      make_quench_schedule(0.2, 4.0, 1, Interpolation::kGeometric).size(),
      std::size_t{1});
  EXPECT_EQ(
      make_quench_schedule(0.2, 4.0, 2, Interpolation::kGeometric),
      make_schedule(0.2, 4.0, 2, Interpolation::kGeometric));
}

}  // namespace
}  // namespace qsmt::anneal

// Tier-1 server tests: wire protocol units (frame reassembly across
// partial reads, malformed prefixes, oversized announcements rejected
// without buffering), the incremental SMT-LIB command scanner, admission
// gate semantics, session behaviour over fragmented input, and one live
// localhost socket round trip. The heavier concurrency scenarios live in
// server_stress_test.cpp; corpus parity in server_corpus_test.cpp.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include "server/admission.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/session.hpp"
#include "service/service.hpp"

namespace {

using namespace qsmt;
using server::AdmissionGate;
using server::CommandScanner;
using server::FrameDecoder;
using server::FrameError;

service::ServiceOptions exact_service(std::size_t workers = 2) {
  service::ServiceOptions options;
  options.num_workers = workers;
  options.portfolio = {service::exact_member("exact")};
  return options;
}

// ---- Frame protocol -------------------------------------------------------

TEST(FrameProtocol, RoundTripsOneByteAtATime) {
  const std::string frame = server::encode_frame("(check-sat)");
  FrameDecoder decoder;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_FALSE(decoder.next().has_value());
    decoder.feed({frame.data() + i, 1});
  }
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "(check-sat)");
  EXPECT_EQ(decoder.error(), FrameError::kNone);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameProtocol, ReassemblesManyFramesFromArbitrarySplits) {
  std::string wire;
  for (int i = 0; i < 5; ++i) {
    wire += server::encode_frame("payload-" + std::to_string(i));
  }
  // Feed in ragged chunks that straddle frame boundaries.
  FrameDecoder decoder;
  std::vector<std::string> payloads;
  std::size_t offset = 0;
  const std::size_t chunks[] = {3, 7, 1, 11, 2, 13, 100000};
  for (std::size_t chunk : chunks) {
    const std::size_t n = std::min(chunk, wire.size() - offset);
    decoder.feed({wire.data() + offset, n});
    offset += n;
    while (auto payload = decoder.next()) payloads.push_back(*payload);
    if (offset == wire.size()) break;
  }
  ASSERT_EQ(payloads.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(payloads[i], "payload-" + std::to_string(i));
  }
}

TEST(FrameProtocol, EmptyPayloadFrameIsValid) {
  FrameDecoder decoder;
  decoder.feed(server::encode_frame(""));
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_TRUE(payload->empty());
}

TEST(FrameProtocol, BadMagicLatchesError) {
  FrameDecoder decoder;
  decoder.feed("X");  // Not 'Q'.
  EXPECT_EQ(decoder.error(), FrameError::kBadMagic);
  EXPECT_FALSE(decoder.next().has_value());
  // Later feeds are ignored; the error stays latched.
  decoder.feed(server::encode_frame("(check-sat)"));
  EXPECT_EQ(decoder.error(), FrameError::kBadMagic);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(FrameProtocol, BadMagicAfterValidFrameLatches) {
  FrameDecoder decoder;
  decoder.feed(server::encode_frame("ok") + "Z");
  ASSERT_TRUE(decoder.next().has_value());
  EXPECT_EQ(decoder.error(), FrameError::kBadMagic);
}

TEST(FrameProtocol, OversizedAnnouncementRejectedFromHeaderAlone) {
  // A hostile 4 GiB length announcement must be refused from the 5 header
  // bytes, before any payload is buffered (or allocated).
  FrameDecoder decoder(1 << 20);
  const char header[5] = {'Q', '\xff', '\xff', '\xff', '\xff'};
  decoder.feed({header, 5});
  EXPECT_EQ(decoder.error(), FrameError::kOversized);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(FrameProtocol, PayloadAtLimitAccepted) {
  FrameDecoder decoder(8);
  decoder.feed(server::encode_frame("12345678"));
  ASSERT_TRUE(decoder.next().has_value());
  FrameDecoder strict(7);
  strict.feed(server::encode_frame("12345678"));
  EXPECT_EQ(strict.error(), FrameError::kOversized);
}

TEST(FrameProtocol, ErrorReplyDoublesQuotes) {
  EXPECT_EQ(server::error_reply("bad \"thing\""),
            "(error \"bad \"\"thing\"\"\")\n");
}

// ---- Command scanner ------------------------------------------------------

TEST(CommandScannerTest, ReassemblesCommandAcrossPartialFeeds) {
  CommandScanner scanner;
  scanner.feed("(assert (= x \"a");
  EXPECT_FALSE(scanner.next().has_value());
  EXPECT_TRUE(scanner.partial());
  scanner.feed("b\"))(check-");
  const auto first = scanner.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, "(assert (= x \"ab\"))");
  EXPECT_FALSE(scanner.next().has_value());
  scanner.feed("sat)");
  const auto second = scanner.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, "(check-sat)");
  EXPECT_FALSE(scanner.partial());
}

TEST(CommandScannerTest, ParensInsideStringsAndCommentsDoNotCount) {
  CommandScanner scanner;
  scanner.feed("(echo \")((((\") ; comment with )))\n(check-sat)");
  const auto echo = scanner.next();
  ASSERT_TRUE(echo.has_value());
  EXPECT_EQ(*echo, "(echo \")((((\")");
  const auto check = scanner.next();
  ASSERT_TRUE(check.has_value());
  EXPECT_EQ(*check, "(check-sat)");
}

TEST(CommandScannerTest, EscapedQuoteStaysInsideString) {
  CommandScanner scanner;
  scanner.feed("(assert (= x \"a\"\")\"))");
  const auto cmd = scanner.next();
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(*cmd, "(assert (= x \"a\"\")\"))");
}

TEST(CommandScannerTest, StrayCloseParenFails) {
  CommandScanner scanner;
  scanner.feed(")(check-sat)");
  EXPECT_FALSE(scanner.next().has_value());
  EXPECT_TRUE(scanner.failed());
  scanner.reset();
  EXPECT_FALSE(scanner.failed());
  scanner.feed("(check-sat)");
  EXPECT_TRUE(scanner.next().has_value());
}

TEST(CommandScannerTest, BareAtomAtTopLevelFails) {
  CommandScanner scanner;
  scanner.feed("hello (check-sat)");
  EXPECT_FALSE(scanner.next().has_value());
  EXPECT_TRUE(scanner.failed());
}

TEST(CommandScannerTest, TrailingCommentWaitsForItsNewline) {
  CommandScanner scanner;
  scanner.feed("; half a comment");
  EXPECT_FALSE(scanner.next().has_value());
  // The rest of the comment line must not be mistaken for fresh input.
  scanner.feed(" still the comment\n(check-sat)");
  const auto cmd = scanner.next();
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(*cmd, "(check-sat)");
  EXPECT_FALSE(scanner.failed());
}

// ---- Admission gate -------------------------------------------------------

TEST(AdmissionGateTest, AdmitsUpToLimitThenQueuesFifo) {
  AdmissionGate gate(1, 4);
  ASSERT_EQ(gate.acquire(), AdmissionGate::Outcome::kAdmitted);

  std::atomic<int> order{0};
  std::atomic<int> first_pos{-1};
  std::atomic<int> second_pos{-1};
  std::thread first([&] {
    EXPECT_EQ(gate.acquire(), AdmissionGate::Outcome::kAdmitted);
    first_pos = order.fetch_add(1);
    gate.release();
  });
  // Ensure `first` is in line before `second` joins it.
  while (gate.stats().waiting < 1) std::this_thread::yield();
  std::thread second([&] {
    EXPECT_EQ(gate.acquire(), AdmissionGate::Outcome::kAdmitted);
    second_pos = order.fetch_add(1);
    gate.release();
  });
  while (gate.stats().waiting < 2) std::this_thread::yield();

  gate.release();
  first.join();
  second.join();
  EXPECT_LT(first_pos.load(), second_pos.load());
  const AdmissionGate::Stats stats = gate.stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.waiting, 0u);
}

TEST(AdmissionGateTest, RejectsWhenLineFull) {
  AdmissionGate gate(1, 0);
  ASSERT_EQ(gate.acquire(), AdmissionGate::Outcome::kAdmitted);
  EXPECT_EQ(gate.acquire(), AdmissionGate::Outcome::kRejected);
  EXPECT_EQ(gate.stats().rejected, 1u);
  gate.release();
  EXPECT_EQ(gate.acquire(), AdmissionGate::Outcome::kAdmitted);
  gate.release();
}

TEST(AdmissionGateTest, CloseUnblocksWaitersAndFailsFast) {
  AdmissionGate gate(1, 4);
  ASSERT_EQ(gate.acquire(), AdmissionGate::Outcome::kAdmitted);
  std::thread waiter([&] {
    EXPECT_EQ(gate.acquire(), AdmissionGate::Outcome::kClosed);
  });
  while (gate.stats().waiting < 1) std::this_thread::yield();
  gate.close();
  waiter.join();
  EXPECT_EQ(gate.acquire(), AdmissionGate::Outcome::kClosed);
}

TEST(AdmissionGateTest, AbandonedWaiterLeavesTheLine) {
  AdmissionGate gate(1, 4);
  ASSERT_EQ(gate.acquire(), AdmissionGate::Outcome::kAdmitted);
  std::atomic<bool> gone{false};
  std::thread waiter([&] {
    EXPECT_EQ(gate.acquire([&] { return gone.load(); }),
              AdmissionGate::Outcome::kAbandoned);
  });
  while (gate.stats().waiting < 1) std::this_thread::yield();
  gone = true;
  waiter.join();
  EXPECT_EQ(gate.stats().abandoned, 1u);
  EXPECT_EQ(gate.stats().waiting, 0u);
  gate.release();
}

// ---- Session --------------------------------------------------------------

TEST(SessionTest, AnswersAcrossFragmentedInput) {
  service::SolveService service(exact_service());
  server::Session session(service);
  EXPECT_EQ(session.consume("(declare-const x Str"), "");
  EXPECT_EQ(session.consume("ing)(assert (= x \"hi\"))(check-"), "");
  const std::string verdict = session.consume("sat)");
  EXPECT_EQ(verdict, "sat\n");
  EXPECT_EQ(session.consume("(get-model)"),
            "(model (define-fun x () String \"hi\"))\n");
  EXPECT_FALSE(session.exited());
  session.consume("(exit)");
  EXPECT_TRUE(session.exited());
}

TEST(SessionTest, PopBelowBottomRepliesErrorAndSurvives) {
  service::SolveService service(exact_service());
  server::Session session(service);
  EXPECT_EQ(session.consume("(pop)"),
            "(error \"pop below the bottom of the assertion stack\")\n");
  EXPECT_FALSE(session.exited());
  // The stack is untouched: the session keeps answering.
  EXPECT_EQ(session.consume(
                "(declare-const x String)(assert (= x \"ok\"))(check-sat)"),
            "sat\n");
  EXPECT_EQ(session.consume("(pop 3)"),
            "(error \"pop below the bottom of the assertion stack\")\n");
  EXPECT_EQ(session.consume("(check-sat)"), "sat\n");
}

TEST(SessionTest, CheckSatAssumingUndeclaredSymbolRepliesError) {
  service::SolveService service(exact_service());
  server::Session session(service);
  session.consume("(declare-const x String)(assert (= x \"ab\"))");
  EXPECT_EQ(session.consume("(check-sat-assuming ((= (str.len nope) 2)))"),
            "(error \"check-sat-assuming: undeclared symbol 'nope'\")\n");
  EXPECT_FALSE(session.exited());
  EXPECT_EQ(session.consume("(check-sat)"), "sat\n");
}

TEST(SessionTest, IncrementalChainWarmStartsKeepVerdictsVerified) {
  service::SolveService service(exact_service());
  server::Session session(service);
  // A push/pop mutation chain: every re-solve may ride the previous
  // witness (warm start), and every verdict must still verify.
  session.consume("(declare-const x String)");
  EXPECT_EQ(session.consume("(assert (str.prefixof \"a\" x))"
                            "(assert (= (str.len x) 2))(check-sat)"),
            "sat\n");
  EXPECT_EQ(session.consume("(push)(assert (str.suffixof \"b\" x))"
                            "(check-sat)"),
            "sat\n");
  EXPECT_EQ(session.consume("(get-model)"),
            "(model (define-fun x () String \"ab\"))\n");
  EXPECT_EQ(session.consume("(pop)(push)(assert (str.suffixof \"c\" x))"
                            "(check-sat)"),
            "sat\n");
  EXPECT_EQ(session.consume("(get-model)"),
            "(model (define-fun x () String \"ac\"))\n");
  EXPECT_EQ(session.consume("(pop)(check-sat)"), "sat\n");
}

TEST(SessionTest, PresolvedVerdictsNeedNoPool) {
  service::SolveService service(exact_service());
  server::Session session(service);
  // Ground-false assertion: certified unsat without any sampling.
  EXPECT_EQ(session.consume("(assert (= \"a\" \"b\"))(check-sat)"),
            "unsat\n");
  EXPECT_EQ(session.consume("(reset)"), "");
  EXPECT_EQ(session.consume("(check-sat)"), "sat\n");
}

TEST(SessionTest, CommandErrorsAreRepliedAndSurvived) {
  service::SolveService service(exact_service());
  server::Session session(service);
  session.consume("(declare-const x String)");
  const std::string dup = session.consume("(declare-const x Int)");
  EXPECT_NE(dup.find("(error \""), std::string::npos);
  EXPECT_NE(dup.find("duplicate declaration"), std::string::npos);
  // Unknown command is an error, not a session killer.
  const std::string bad = session.consume("(frobnicate)");
  EXPECT_NE(bad.find("(error \""), std::string::npos);
  EXPECT_EQ(session.consume("(assert (= x \"q\"))(check-sat)"), "sat\n");
  EXPECT_EQ(session.stats().errors, 2u);
}

TEST(SessionTest, MalformedTopLevelInputDiscardsBuffer) {
  service::SolveService service(exact_service());
  server::Session session(service);
  const std::string reply = session.consume("))) nonsense");
  EXPECT_NE(reply.find("(error \"malformed input"), std::string::npos);
  // The session is still alive and parses fresh input.
  EXPECT_EQ(session.consume("(check-sat)"), "sat\n");
}

TEST(SessionTest, OverloadedGateRejectsGracefully) {
  service::SolveService service(exact_service());
  server::AdmissionGate gate(1, 0);
  ASSERT_EQ(gate.acquire(), AdmissionGate::Outcome::kAdmitted);

  server::Session session(service, &gate, {});
  session.consume("(declare-const x String)(assert (= x \"zz\"))");
  const std::string reply = session.consume("(check-sat)");
  EXPECT_NE(reply.find("(error \"server overloaded"), std::string::npos);
  EXPECT_EQ(session.stats().overload_rejects, 1u);
  // The assertion context is untouched: after the flood passes, the same
  // query succeeds.
  gate.release();
  EXPECT_EQ(session.consume("(check-sat)"), "sat\n");
  EXPECT_EQ(session.consume("(get-model)"),
            "(model (define-fun x () String \"zz\"))\n");
}

TEST(SessionTest, DisconnectBeforeDispatchShortCircuits) {
  service::SolveService service(exact_service());
  server::Session session(service);
  session.disconnect();
  session.disconnect();  // Idempotent.
  EXPECT_TRUE(session.exited());
  EXPECT_EQ(session.consume("(check-sat)"), "");
  EXPECT_EQ(session.stats().disconnect_cancels, 0u);
}

// ---- Socket server --------------------------------------------------------

TEST(ServerSocket, RoundTripAndExit) {
  server::ServerOptions options;
  options.service = exact_service();
  server::Server node(options);
  const std::uint16_t port = node.listen(0);
  ASSERT_GT(port, 0);
  node.start();

  server::Client client;
  client.connect(port);
  EXPECT_EQ(client.request("(declare-const x String)"), "");
  EXPECT_EQ(client.request("(assert (= x \"ab\"))"), "");
  EXPECT_EQ(client.request("(check-sat)"), "sat\n");
  const std::string model = client.request("(get-model)");
  EXPECT_NE(model.find("(define-fun x () String \"ab\")"),
            std::string::npos);
  EXPECT_EQ(client.request("(exit)"), "");
  client.close();

  node.shutdown();
  const server::Server::Stats stats = node.stats();
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.sessions_closed, 1u);
  EXPECT_EQ(stats.frames, 5u);
  EXPECT_EQ(stats.frame_errors, 0u);
}

// check-sat-assuming over the socket transport: assumptions scope to one
// check, forced witnesses pin the models, and an undeclared symbol draws
// the same (error ...) reply the stdio transport gives.
TEST(ServerSocket, CheckSatAssumingScopesPerCheckOverTheWire) {
  server::ServerOptions options;
  options.service = exact_service();
  server::Server node(options);
  const std::uint16_t port = node.listen(0);
  node.start();

  server::Client client;
  client.connect(port);
  EXPECT_EQ(client.request("(declare-const x String)"
                           "(assert (= (str.len x) 2))"
                           "(assert (str.suffixof \"b\" x))"),
            "");
  EXPECT_EQ(client.request("(check-sat-assuming ((str.prefixof \"a\" x)))"),
            "sat\n");
  EXPECT_EQ(client.request("(get-model)"),
            "(model (define-fun x () String \"ab\"))\n");
  EXPECT_EQ(client.request("(check-sat-assuming ((= x \"cb\")))"), "sat\n");
  // The retracted assumptions did not enter the assertion stack: a plain
  // check still answers, and a contradictory assumption is one-shot.
  EXPECT_EQ(client.request("(check-sat-assuming ((= x \"zz\")))"), "unsat\n");
  EXPECT_EQ(client.request("(check-sat)"), "sat\n");
  EXPECT_EQ(client.request("(check-sat-assuming ((= nope \"b\")))"),
            "(error \"check-sat-assuming: undeclared symbol 'nope'\")\n");
  EXPECT_EQ(client.request("(check-sat)"), "sat\n");
  EXPECT_EQ(client.request("(exit)"), "");
  client.close();
  node.shutdown();
}

TEST(ServerSocket, RequestSplitAcrossFramesIsOneCommandStream) {
  server::ServerOptions options;
  options.service = exact_service();
  server::Server node(options);
  const std::uint16_t port = node.listen(0);
  node.start();

  server::Client client;
  client.connect(port);
  // A command split across two frames: the first reply is empty, the
  // second completes the command and carries the verdict.
  EXPECT_EQ(client.request("(assert (= \"x\" "), "");
  EXPECT_EQ(client.request("\"x\"))(check-sat)"), "sat\n");
  client.close();
  node.shutdown();
}

TEST(ServerSocket, MalformedFrameGetsErrorReplyAndDisconnect) {
  server::ServerOptions options;
  options.service = exact_service();
  server::Server node(options);
  const std::uint16_t port = node.listen(0);
  node.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  const char garbage[] = "GET / HTTP/1.1\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof garbage - 1, MSG_NOSIGNAL), 0);

  // The server answers one framed error reply, then closes.
  server::FrameDecoder decoder;
  std::string reply;
  for (;;) {
    char buffer[512];
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) break;
    decoder.feed({buffer, static_cast<std::size_t>(n)});
    if (auto payload = decoder.next()) {
      reply = *payload;
    }
  }
  ::close(fd);
  EXPECT_NE(reply.find("(error \"protocol error: bad frame magic\")"),
            std::string::npos);
  node.shutdown();
  EXPECT_EQ(node.stats().frame_errors, 1u);
}

TEST(ServerStdio, ServesScriptsAndFlushesPerCommand) {
  server::ServerOptions options;
  options.service = exact_service();
  server::Server node(options);
  std::istringstream in(
      "(declare-const x String)\n"
      "(assert (= x \"ok\"))\n"
      "(check-sat)\n"
      "(get-value (x))\n"
      "(exit)\n");
  std::ostringstream out;
  EXPECT_EQ(node.run_stdio(in, out), 0);
  EXPECT_EQ(out.str(), "sat\n((x \"ok\"))\n");
  EXPECT_EQ(node.stats().sessions_opened, 1u);
  EXPECT_EQ(node.stats().sessions_closed, 1u);
}

}  // namespace

// Tests for sweep auto-tuning and solution enumeration.
#include <gtest/gtest.h>

#include "anneal/autotune.hpp"
#include "anneal/simulated_annealer.hpp"
#include "strenc/ascii7.hpp"
#include "strqubo/solver.hpp"
#include "strqubo/verify.hpp"

namespace qsmt {
namespace {

anneal::SampleJudge equality_judge(const std::string& target) {
  return [target](std::span<const std::uint8_t> bits) {
    return strenc::decode_string(bits) == target;
  };
}

TEST(TuneSweeps, ValidatesArguments) {
  qubo::QuboModel model(4);
  EXPECT_THROW(anneal::tune_sweeps(model, nullptr), std::invalid_argument);
  anneal::TuneParams p;
  p.initial_sweeps = 0;
  EXPECT_THROW(anneal::tune_sweeps(model, equality_judge(""), p),
               std::invalid_argument);
  p = {};
  p.target_success = 0.0;
  EXPECT_THROW(anneal::tune_sweeps(model, equality_judge(""), p),
               std::invalid_argument);
  p = {};
  p.pilot_reads = 0;
  EXPECT_THROW(anneal::tune_sweeps(model, equality_judge(""), p),
               std::invalid_argument);
}

TEST(TuneSweeps, EasyModelMeetsTargetEarly) {
  const auto model = strqubo::build_equality("ab");
  anneal::TuneParams p;
  p.seed = 1;
  const auto result = anneal::tune_sweeps(model, equality_judge("ab"), p);
  EXPECT_TRUE(result.target_met);
  EXPECT_GE(result.success, p.target_success);
  EXPECT_LE(result.sweeps, 128u);  // Diagonal models need very few sweeps.
  EXPECT_GE(result.probes, 1u);
}

TEST(TuneSweeps, ImpossibleJudgeExhaustsBudget) {
  const auto model = strqubo::build_equality("ab");
  anneal::TuneParams p;
  p.initial_sweeps = 8;
  p.max_sweeps = 32;
  const auto result = anneal::tune_sweeps(
      model, [](std::span<const std::uint8_t>) { return false; }, p);
  EXPECT_FALSE(result.target_met);
  EXPECT_EQ(result.sweeps, 32u);
  EXPECT_DOUBLE_EQ(result.success, 0.0);
  EXPECT_EQ(result.probes, 3u);  // 8 -> 16 -> 32.
}

TEST(TuneSweeps, HarderTargetNeedsMoreSweeps) {
  // A longer equality target needs more sweeps for per-read success; the
  // tuner's chosen budget must be monotone-ish in difficulty.
  anneal::TuneParams p;
  p.seed = 3;
  p.initial_sweeps = 1;
  p.target_success = 0.9;
  const auto easy = anneal::tune_sweeps(strqubo::build_equality("ab"),
                                        equality_judge("ab"), p);
  const auto hard = anneal::tune_sweeps(
      strqubo::build_equality("a longer target string"),
      equality_judge("a longer target string"), p);
  EXPECT_TRUE(easy.target_met);
  EXPECT_TRUE(hard.target_met);
  EXPECT_GE(hard.sweeps, easy.sweeps);
}

TEST(TuneSweeps, DeterministicInSeed) {
  const auto model = strqubo::build_palindrome(4);
  const auto judge = [](std::span<const std::uint8_t> bits) {
    const std::string s = strenc::decode_string(bits);
    return strqubo::verify_string(strqubo::Palindrome{4}, s);
  };
  anneal::TuneParams p;
  p.seed = 11;
  const auto a = anneal::tune_sweeps(model, judge, p);
  const auto b = anneal::tune_sweeps(model, judge, p);
  EXPECT_EQ(a.sweeps, b.sweeps);
  EXPECT_DOUBLE_EQ(a.success, b.success);
}

TEST(EnumerateSolutions, DistinctVerifiedBestFirst) {
  anneal::SimulatedAnnealerParams p;
  p.num_reads = 64;
  p.num_sweeps = 256;
  p.seed = 5;
  const anneal::SimulatedAnnealer annealer(p);
  const strqubo::Constraint constraint = strqubo::Palindrome{4};
  const auto samples = annealer.sample(strqubo::build(constraint));

  const auto solutions = strqubo::enumerate_solutions(constraint, samples);
  ASSERT_GT(solutions.size(), 1u);  // Many reads -> several palindromes.
  std::set<std::string> unique(solutions.begin(), solutions.end());
  EXPECT_EQ(unique.size(), solutions.size());
  for (const auto& s : solutions) {
    EXPECT_TRUE(strqubo::verify_string(constraint, s)) << s;
  }
}

TEST(EnumerateSolutions, RespectsLimit) {
  anneal::SimulatedAnnealerParams p;
  p.num_reads = 64;
  p.num_sweeps = 256;
  p.seed = 6;
  const anneal::SimulatedAnnealer annealer(p);
  const strqubo::Constraint constraint = strqubo::Palindrome{4};
  const auto samples = annealer.sample(strqubo::build(constraint));
  EXPECT_LE(strqubo::enumerate_solutions(constraint, samples, 2).size(), 2u);
}

TEST(EnumerateSolutions, UniqueSolutionConstraints) {
  anneal::SimulatedAnnealerParams p;
  p.num_reads = 32;
  p.num_sweeps = 192;
  p.seed = 7;
  const anneal::SimulatedAnnealer annealer(p);
  const strqubo::Constraint constraint = strqubo::Equality{"only"};
  const auto samples = annealer.sample(strqubo::build(constraint));
  const auto solutions = strqubo::enumerate_solutions(constraint, samples);
  ASSERT_EQ(solutions.size(), 1u);
  EXPECT_EQ(solutions[0], "only");
}

TEST(EnumerateSolutions, RejectsIncludes) {
  anneal::SampleSet samples;
  EXPECT_THROW(
      strqubo::enumerate_solutions(strqubo::Includes{"ab", "a"}, samples),
      std::invalid_argument);
}

}  // namespace
}  // namespace qsmt

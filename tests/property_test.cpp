// Cross-cutting property-based tests: randomised inputs, invariant checks.
#include <gtest/gtest.h>

#include <memory>

#include "anneal/exact.hpp"
#include "anneal/greedy.hpp"
#include "anneal/pimc.hpp"
#include "anneal/random_sampler.hpp"
#include "anneal/simulated_annealer.hpp"
#include "anneal/tabu.hpp"
#include "anneal/tempering.hpp"
#include "qubo/serialize.hpp"
#include "regex/nfa.hpp"
#include "smtlib/driver.hpp"
#include "smtlib/sexpr.hpp"
#include "strenc/ascii7.hpp"
#include "strqubo/pipeline.hpp"
#include "strqubo/verify.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"
#include "workload/smt2_render.hpp"

namespace qsmt {
namespace {

qubo::QuboModel random_model(std::size_t n, Xoshiro256& rng) {
  qubo::QuboModel model(n);
  model.set_offset(rng.uniform() - 0.5);
  for (std::size_t i = 0; i < n; ++i)
    model.add_linear(i, rng.uniform() * 2.0 - 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < 0.3)
        model.add_quadratic(i, j, rng.uniform() * 2.0 - 1.0);
    }
  }
  return model;
}

// Property: every sampler reports energies consistent with the model, and
// never claims an energy below the exact ground state.
class SamplerInvariants : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<anneal::Sampler> make() const {
    switch (GetParam()) {
      case 0: {
        anneal::SimulatedAnnealerParams p;
        p.num_reads = 8;
        p.num_sweeps = 32;
        p.seed = 1;
        return std::make_unique<anneal::SimulatedAnnealer>(p);
      }
      case 1: {
        anneal::TabuParams p;
        p.num_restarts = 4;
        p.seed = 1;
        return std::make_unique<anneal::TabuSampler>(p);
      }
      case 2: {
        anneal::GreedyDescentParams p;
        p.num_reads = 8;
        p.seed = 1;
        return std::make_unique<anneal::GreedyDescent>(p);
      }
      case 3: {
        anneal::RandomSamplerParams p;
        p.num_reads = 8;
        p.seed = 1;
        return std::make_unique<anneal::RandomSampler>(p);
      }
      case 4: {
        anneal::PathIntegralParams p;
        p.num_reads = 4;
        p.num_sweeps = 32;
        p.seed = 1;
        return std::make_unique<anneal::PathIntegralAnnealer>(p);
      }
      default: {
        anneal::ParallelTemperingParams p;
        p.num_reads = 4;
        p.num_sweeps = 32;
        p.seed = 1;
        return std::make_unique<anneal::ParallelTempering>(p);
      }
    }
  }
};

TEST_P(SamplerInvariants, EnergiesConsistentAndBoundedByGround) {
  const auto sampler = make();
  Xoshiro256 rng(77 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 5; ++trial) {
    const auto model = random_model(10, rng);
    const double ground = anneal::ExactSolver().ground_energy(model);
    const anneal::SampleSet samples = sampler->sample(model);
    ASSERT_FALSE(samples.empty());
    double previous = -1e300;
    for (const auto& s : samples) {
      EXPECT_NEAR(model.energy(s.bits), s.energy, 1e-9);
      EXPECT_GE(s.energy, ground - 1e-9);
      EXPECT_GE(s.energy, previous - 1e-9);  // Sorted ascending.
      previous = s.energy;
      EXPECT_EQ(s.bits.size(), model.num_variables());
      EXPECT_GE(s.num_occurrences, 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSamplers, SamplerInvariants,
                         ::testing::Range(0, 6));

// Property: COO serialization round-trips random models exactly.
TEST(SerializationProperty, RandomModelsRoundTrip) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 25; ++trial) {
    const auto model = random_model(1 + rng.below(24), rng);
    const auto round_tripped = qubo::from_coo_string(qubo::to_coo_string(model));
    EXPECT_TRUE(round_tripped == model) << "trial " << trial;
    EXPECT_DOUBLE_EQ(round_tripped.offset(), model.offset());
  }
}

// Property: random pipelines end satisfied and match the classical
// composition of their transforms.
TEST(PipelineProperty, RandomTransformChainsVerify) {
  anneal::SimulatedAnnealerParams p;
  p.num_reads = 48;
  p.num_sweeps = 256;
  p.seed = 17;
  const anneal::SimulatedAnnealer annealer(p);
  const strqubo::StringConstraintSolver solver(annealer);

  workload::GeneratorParams gp;
  gp.seed = 21;
  gp.max_length = 5;
  workload::Generator generator(gp);
  Xoshiro256 rng(33);

  for (int trial = 0; trial < 10; ++trial) {
    const std::string start = generator.random_string();
    strqubo::Pipeline pipeline{strqubo::Equality{start}};
    std::string expected = start;
    const std::size_t num_transforms = 1 + rng.below(3);
    for (std::size_t t = 0; t < num_transforms; ++t) {
      switch (rng.below(4)) {
        case 0:
          pipeline.then(strqubo::ThenReverse{});
          expected.assign(expected.rbegin(), expected.rend());
          break;
        case 1: {
          const char from = expected[rng.below(expected.size())];
          const char to = static_cast<char>('a' + rng.below(26));
          pipeline.then(strqubo::ThenReplaceAll{from, to});
          expected = strqubo::replace_all_chars(expected, from, to);
          break;
        }
        case 2: {
          const char from = expected[rng.below(expected.size())];
          const char to = static_cast<char>('a' + rng.below(26));
          pipeline.then(strqubo::ThenReplace{from, to});
          expected = strqubo::replace_first_char(expected, from, to);
          break;
        }
        default: {
          const std::string suffix(1 + rng.below(2), 'q');
          pipeline.then(strqubo::ThenConcat{suffix});
          expected += suffix;
          break;
        }
      }
    }
    const auto result = pipeline.run(solver);
    EXPECT_TRUE(result.all_satisfied) << "trial " << trial;
    EXPECT_EQ(result.final_value, expected) << "trial " << trial;
  }
}

// Property: merged conjunctions that report solved always hand back a
// witness satisfying every conjunct.
TEST(ConjunctionProperty, SolvedImpliesAllConjunctsVerified) {
  anneal::SimulatedAnnealerParams p;
  p.num_reads = 32;
  p.num_sweeps = 192;
  p.seed = 3;
  const anneal::SimulatedAnnealer annealer(p);

  workload::GeneratorParams gp;
  gp.seed = 8;
  gp.min_length = 4;
  gp.max_length = 4;  // Same length so conjuncts merge.
  workload::Generator generator(gp);

  std::size_t solved_count = 0;
  for (int trial = 0; trial < 30; ++trial) {
    // Two random generating constraints of identical length.
    std::vector<strqubo::Constraint> conjuncts;
    while (conjuncts.size() < 2) {
      auto c = generator.next();
      if (!strqubo::produces_string(c)) continue;
      if (strqubo::constraint_num_variables(c) != 28) continue;
      conjuncts.push_back(std::move(c));
    }
    const auto result = smtlib::solve_conjunction(conjuncts, annealer, {});
    if (result.solved) {
      ++solved_count;
      for (const auto& c : conjuncts) {
        EXPECT_TRUE(strqubo::verify_string(c, result.value))
            << strqubo::describe(c) << " vs '" << result.value << "'";
      }
    }
  }
  // Many random pairs are jointly satisfiable; the solver should crack a
  // decent share of them.
  EXPECT_GT(solved_count, 5u);
}

// Fuzz: generated SMT scripts never crash the driver, and sat answers
// always carry verified models.
TEST(SmtFuzz, GeneratedScriptsNeverCrash) {
  anneal::SimulatedAnnealerParams p;
  p.num_reads = 16;
  p.num_sweeps = 96;
  p.seed = 2;
  const anneal::SimulatedAnnealer annealer(p);

  workload::GeneratorParams gp;
  gp.seed = 14;
  workload::Generator generator(gp);
  for (int trial = 0; trial < 60; ++trial) {
    const auto constraint = generator.next();
    const auto script = workload::to_smt2(constraint);
    if (!script) continue;
    smtlib::SmtDriver driver(annealer);
    std::string out;
    EXPECT_NO_THROW(out = driver.run_script(*script)) << *script;
    // `sat` implies the recorded model passes classical verification of the
    // original constraint (driver verified the compiled one; for rendered
    // scripts they agree on witnesses).
    if (out.find("sat\n") == 0) {
      EXPECT_TRUE(
          strqubo::verify_string(constraint,
                                 driver.history().back().model_value) ||
          !strqubo::produces_string(constraint))
          << strqubo::describe(constraint);
    }
  }
}

// Fuzz: malformed SMT input fails with exceptions, never UB/crashes.
TEST(SmtFuzz, MalformedInputsThrowCleanly) {
  anneal::SimulatedAnnealerParams p;
  p.num_reads = 4;
  p.num_sweeps = 16;
  const anneal::SimulatedAnnealer annealer(p);
  const char* bad_scripts[] = {
      "(",
      ")",
      "(assert)",
      "(declare-const)",
      "(assert (= x))(",
      "\"unterminated",
      "(get-value x)",
  };
  for (const char* script : bad_scripts) {
    smtlib::SmtDriver driver(annealer);
    EXPECT_THROW(driver.run_script(script), std::invalid_argument) << script;
  }
  // Stack misuse is well-formed SMT-LIB with a bad state, not a parse
  // error: it replies (error ...) in the transcript and the session lives.
  {
    smtlib::SmtDriver driver(annealer);
    const std::string out = driver.run_script(
        "(declare-const x String)(assert (= x \"a\"))(pop)");
    EXPECT_NE(out.find("(error "), std::string::npos);
  }
}

// Fuzz: random byte soup never crashes the s-expression reader — it either
// parses or throws std::invalid_argument.
TEST(SmtFuzz, RandomBytesEitherParseOrThrowCleanly) {
  Xoshiro256 rng(99);
  const char charset[] = "()\"\\;abc xyz019 .+-*?[]\n\tstr.len=";
  for (int trial = 0; trial < 500; ++trial) {
    std::string soup;
    const std::size_t len = rng.below(60);
    for (std::size_t i = 0; i < len; ++i) {
      soup.push_back(charset[rng.below(sizeof(charset) - 1)]);
    }
    try {
      const auto exprs = smtlib::parse_sexprs(soup);
      // If it parsed, rendering and reparsing must agree structurally.
      for (const auto& expr : exprs) {
        const auto again = smtlib::parse_sexprs(smtlib::to_string(expr));
        ASSERT_EQ(again.size(), 1u);
        EXPECT_EQ(smtlib::to_string(again[0]), smtlib::to_string(expr));
      }
    } catch (const std::invalid_argument&) {
      // Expected for malformed soup.
    }
  }
}

// Fuzz: random soup through the full pattern parser.
TEST(RegexFuzz, RandomPatternsEitherParseOrThrowCleanly) {
  Xoshiro256 rng(101);
  const char charset[] = "ab[]+*?\\c";
  for (int trial = 0; trial < 500; ++trial) {
    std::string pattern;
    const std::size_t len = 1 + rng.below(12);
    for (std::size_t i = 0; i < len; ++i) {
      pattern.push_back(charset[rng.below(sizeof(charset) - 1)]);
    }
    try {
      const auto parsed = regex::parse_pattern(pattern);
      // Parsed patterns must be expandable at their minimum length and the
      // witness must match.
      const auto tokens =
          regex::expand_to_length(parsed, parsed.min_length());
      std::string witness;
      for (const auto& token : tokens) witness.push_back(token.chars[0]);
      EXPECT_TRUE(regex::Nfa::compile(parsed).matches(witness))
          << pattern << " -> " << witness;
    } catch (const std::invalid_argument&) {
      // Expected for malformed patterns.
    }
  }
}

// Property: decoding is the left inverse of encoding for random strings.
TEST(EncodingProperty, RandomStringsRoundTrip) {
  workload::GeneratorParams gp;
  gp.seed = 4;
  gp.min_length = 1;
  gp.max_length = 20;
  gp.alphabet =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 !?";
  workload::Generator generator(gp);
  for (int trial = 0; trial < 100; ++trial) {
    const std::string s = generator.random_string();
    EXPECT_EQ(strenc::decode_string(strenc::encode_string(s)), s);
  }
}

}  // namespace
}  // namespace qsmt

// Golden-file corpus (ctest label: conformance): every .smt2 script under
// tests/corpus/ carries pinned expectations in its leading comments and is
// replayed through the full smtlib::SmtDriver pipeline with the exact
// solver (deterministic — no annealing noise in golden verdicts):
//
//   ; expect: sat|unsat|unknown   one per check-sat, in order
//   ; expect-model: <text>        model value of the last check-sat, verbatim
//   ; expect-note: <substr>       last check-sat's notes must contain this
//   ; expect-contains: <substr>   full transcript must contain this
//   ; expect-throw: <substr>      running the script throws invalid_argument
//
// The corpus pins the user-visible contract: witnesses for every §4 op
// family, all four certified-unsat routes, out-of-fragment degradation,
// comment/escape lexing, and malformed-input errors.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "anneal/exact.hpp"
#include "smtlib/driver.hpp"

namespace qsmt::smtlib {
namespace {

namespace fs = std::filesystem;

struct Expectations {
  std::vector<std::string> verdicts;
  std::optional<std::string> model;
  std::vector<std::string> notes;
  std::vector<std::string> contains;
  bool expect_throw = false;
  std::string throw_substring;

  bool empty() const {
    return verdicts.empty() && !model && notes.empty() && contains.empty() &&
           !expect_throw;
  }
};

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Returns the remainder after `prefix`, stripped of one leading space.
std::optional<std::string> after(const std::string& line,
                                 const std::string& prefix) {
  if (line.rfind(prefix, 0) != 0) return std::nullopt;
  std::string rest = line.substr(prefix.size());
  if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
  return rest;
}

Expectations parse_expectations(const std::string& text) {
  Expectations expect;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (auto rest = after(line, "; expect:")) {
      expect.verdicts.push_back(*rest);
    } else if (auto rest = after(line, "; expect-model:")) {
      expect.model = *rest;
    } else if (auto rest = after(line, "; expect-note:")) {
      expect.notes.push_back(*rest);
    } else if (auto rest = after(line, "; expect-contains:")) {
      expect.contains.push_back(*rest);
    } else if (auto rest = after(line, "; expect-throw:")) {
      expect.expect_throw = true;
      expect.throw_substring = *rest;
    }
  }
  return expect;
}

std::vector<std::string> verdict_lines(const std::string& output) {
  std::vector<std::string> verdicts;
  std::istringstream lines(output);
  std::string line;
  while (std::getline(lines, line)) {
    if (line == "sat" || line == "unsat" || line == "unknown") {
      verdicts.push_back(line);
    }
  }
  return verdicts;
}

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(QSMT_CORPUS_DIR)) {
    if (entry.path().extension() == ".smt2") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

class CorpusTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CorpusTest, MatchesPinnedExpectations) {
  const fs::path path = corpus_files().at(GetParam());
  const std::string script = read_file(path);
  const Expectations expect = parse_expectations(script);
  ASSERT_FALSE(expect.empty())
      << path << " declares no expectations; pin at least one";

  const anneal::ExactSolver exact;
  SmtDriver driver(exact);

  if (expect.expect_throw) {
    try {
      driver.run_script(script);
      FAIL() << path << " was expected to throw";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(expect.throw_substring),
                std::string::npos)
          << path << ": exception '" << e.what() << "' lacks '"
          << expect.throw_substring << "'";
    }
    return;
  }

  const std::string output = driver.run_script(script);
  EXPECT_EQ(verdict_lines(output), expect.verdicts) << path << "\n" << output;

  for (const std::string& needle : expect.contains) {
    EXPECT_NE(output.find(needle), std::string::npos)
        << path << ": transcript lacks '" << needle << "'\n"
        << output;
  }
  if (expect.model || !expect.notes.empty()) {
    ASSERT_FALSE(driver.history().empty()) << path;
    const CheckSatRecord& last = driver.history().back();
    if (expect.model) {
      EXPECT_EQ(last.model_value, *expect.model) << path;
    }
    std::string joined;
    for (const std::string& note : last.notes) joined += note + "\n";
    for (const std::string& needle : expect.notes) {
      EXPECT_NE(joined.find(needle), std::string::npos)
          << path << ": notes lack '" << needle << "'\n"
          << joined;
    }
  }
}

std::string corpus_test_name(const ::testing::TestParamInfo<std::size_t>& info) {
  std::string name = corpus_files().at(info.param).stem().string();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Golden, CorpusTest,
                         ::testing::Range<std::size_t>(0,
                                                       corpus_files().size()),
                         corpus_test_name);

TEST(Corpus, HasFullOperationSpread) {
  // The corpus is a contract surface: keep it at least this wide.
  EXPECT_GE(corpus_files().size(), 15u);
}

}  // namespace
}  // namespace qsmt::smtlib

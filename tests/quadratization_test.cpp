#include <gtest/gtest.h>

#include <bit>

#include "qubo/quadratization.hpp"

namespace qsmt::qubo {
namespace {

// Enumerates all assignments of `model`, invoking `visit(mask, energy)`.
template <typename Visit>
void for_all(const QuboModel& model, Visit&& visit) {
  const std::size_t n = model.num_variables();
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    std::vector<std::uint8_t> bits(n);
    for (std::size_t i = 0; i < n; ++i) bits[i] = (mask >> i) & 1;
    visit(mask, model.energy(bits));
  }
}

TEST(AndAncilla, GroundStatesImplementAnd) {
  QuboModel model(2);
  const std::size_t w = add_and_ancilla(model, 0, 1, 2.0);
  EXPECT_EQ(w, 2u);
  for_all(model, [&](unsigned mask, double energy) {
    const bool x = mask & 1;
    const bool y = (mask >> 1) & 1;
    const bool ancilla = (mask >> 2) & 1;
    if (ancilla == (x && y)) {
      EXPECT_NEAR(energy, 0.0, 1e-12) << "mask=" << mask;
    } else {
      EXPECT_GE(energy, 2.0 - 1e-12) << "mask=" << mask;
    }
  });
}

TEST(AndAncilla, RejectsSelfAnd) {
  QuboModel model(1);
  EXPECT_THROW(add_and_ancilla(model, 0, 0, 1.0), std::invalid_argument);
}

TEST(NotAncilla, GroundStatesImplementNot) {
  QuboModel model(1);
  const std::size_t n = add_not_ancilla(model, 0, 3.0);
  EXPECT_EQ(n, 1u);
  for_all(model, [&](unsigned mask, double energy) {
    const bool x = mask & 1;
    const bool ancilla = (mask >> 1) & 1;
    if (ancilla == !x) {
      EXPECT_NEAR(energy, 0.0, 1e-12);
    } else {
      EXPECT_GE(energy, 3.0 - 1e-12);
    }
  });
}

TEST(Conjunction, SingleLiteralSpendsNoAncilla) {
  QuboModel model(3);
  const std::vector<BoolLiteral> literals{{1, true}};
  EXPECT_EQ(add_conjunction(model, literals, 1.0), 1u);
  EXPECT_EQ(model.num_variables(), 3u);
  EXPECT_EQ(conjunction_ancilla_count(literals), 0u);
}

TEST(Conjunction, SingleNegatedLiteralSpendsOneAncilla) {
  QuboModel model(1);
  const std::vector<BoolLiteral> literals{{0, false}};
  const std::size_t out = add_conjunction(model, literals, 1.0);
  EXPECT_EQ(out, 1u);
  EXPECT_EQ(conjunction_ancilla_count(literals), 1u);
}

TEST(Conjunction, ThreeWayAndIsExact) {
  QuboModel model(3);
  const std::vector<BoolLiteral> literals{{0, true}, {1, true}, {2, true}};
  const std::size_t out = add_conjunction(model, literals, 2.0);
  EXPECT_EQ(conjunction_ancilla_count(literals), 2u);
  EXPECT_EQ(model.num_variables(), 5u);
  for_all(model, [&](unsigned mask, double energy) {
    if (energy > 1e-12) return;  // Only inspect gadget-consistent states.
    const bool x = mask & 1;
    const bool y = (mask >> 1) & 1;
    const bool z = (mask >> 2) & 1;
    const bool result = (mask >> out) & 1;
    EXPECT_EQ(result, x && y && z) << "mask=" << mask;
  });
}

TEST(Conjunction, EveryInputCombinationHasAZeroEnergyCompletion) {
  // For each assignment of the 3 inputs there must exist ancilla values
  // with total gadget energy zero (the gadgets never over-constrain).
  QuboModel model(3);
  const std::vector<BoolLiteral> literals{{0, true}, {1, false}, {2, true}};
  add_conjunction(model, literals, 1.5);
  const std::size_t total = model.num_variables();
  for (unsigned inputs = 0; inputs < 8; ++inputs) {
    double best = 1e18;
    for (unsigned rest = 0; rest < (1u << (total - 3)); ++rest) {
      const unsigned mask = inputs | (rest << 3);
      std::vector<std::uint8_t> bits(total);
      for (std::size_t i = 0; i < total; ++i) bits[i] = (mask >> i) & 1;
      best = std::min(best, model.energy(bits));
    }
    EXPECT_NEAR(best, 0.0, 1e-12) << "inputs=" << inputs;
  }
}

TEST(Conjunction, MixedLiteralsComputeCorrectFunction) {
  // out = x AND (NOT y): check via minimum-energy completions.
  QuboModel model(2);
  const std::vector<BoolLiteral> literals{{0, true}, {1, false}};
  const std::size_t out = add_conjunction(model, literals, 2.0);
  const std::size_t total = model.num_variables();
  for (unsigned inputs = 0; inputs < 4; ++inputs) {
    const bool x = inputs & 1;
    const bool y = (inputs >> 1) & 1;
    bool found_consistent = false;
    for (unsigned rest = 0; rest < (1u << (total - 2)); ++rest) {
      const unsigned mask = inputs | (rest << 2);
      std::vector<std::uint8_t> bits(total);
      for (std::size_t i = 0; i < total; ++i) bits[i] = (mask >> i) & 1;
      if (model.energy(bits) < 1e-12) {
        found_consistent = true;
        EXPECT_EQ(bits[out] != 0, x && !y) << "inputs=" << inputs;
      }
    }
    EXPECT_TRUE(found_consistent);
  }
}

TEST(Conjunction, PenaltyScaling) {
  // A violated gadget must cost at least the requested penalty.
  QuboModel model(2);
  const std::vector<BoolLiteral> literals{{0, true}, {1, true}};
  const std::size_t out = add_conjunction(model, literals, 5.0);
  std::vector<std::uint8_t> bits(model.num_variables(), 0);
  bits[out] = 1;  // out asserts x AND y but x = y = 0.
  EXPECT_GE(model.energy(bits), 5.0 - 1e-12);
}

TEST(Conjunction, EmptyLiteralListThrows) {
  QuboModel model(1);
  const std::vector<BoolLiteral> none;
  EXPECT_THROW(add_conjunction(model, none, 1.0), std::invalid_argument);
}

TEST(Conjunction, ComposesWithExistingObjective) {
  // Penalizing the conjunction (NOT x0) AND (NOT x1) while rewarding zeros
  // forces at least one variable to 1.
  QuboModel model(2);
  model.add_linear(0, 0.1);
  model.add_linear(1, 0.1);
  const std::vector<BoolLiteral> literals{{0, false}, {1, false}};
  const std::size_t both_zero = add_conjunction(model, literals, 2.0);
  model.add_linear(both_zero, 1.0);  // Firing the indicator costs 1.

  // Minimum over completions for each input pattern.
  const std::size_t total = model.num_variables();
  auto best_for = [&](unsigned inputs) {
    double best = 1e18;
    for (unsigned rest = 0; rest < (1u << (total - 2)); ++rest) {
      const unsigned mask = inputs | (rest << 2);
      std::vector<std::uint8_t> bits(total);
      for (std::size_t i = 0; i < total; ++i) bits[i] = (mask >> i) & 1;
      best = std::min(best, model.energy(bits));
    }
    return best;
  };
  EXPECT_NEAR(best_for(0b01), 0.1, 1e-12);  // One variable set: no penalty.
  EXPECT_NEAR(best_for(0b00), 1.0, 1e-12);  // All zero: indicator fires.
}

}  // namespace
}  // namespace qsmt::qubo

// Second integration suite: cross-topology embedding, noise through the
// string stack, refinement loops, and the generate -> render -> solve
// workflow.
#include <gtest/gtest.h>

#include "anneal/autotune.hpp"
#include "anneal/noise.hpp"
#include "anneal/reverse.hpp"
#include "anneal/simulated_annealer.hpp"
#include "engine/engine.hpp"
#include "graph/embedded_sampler.hpp"
#include "graph/topologies.hpp"
#include "strenc/ascii7.hpp"
#include "strqubo/solver.hpp"
#include "strqubo/verify.hpp"
#include "workload/generator.hpp"
#include "workload/smt2_render.hpp"

namespace qsmt {
namespace {

TEST(CrossTopology, KingLatticeSolvesStringConstraints) {
  const graph::Graph king = graph::make_king(10, 10);
  graph::EmbeddedSamplerParams params;
  params.anneal.num_reads = 48;
  params.anneal.num_sweeps = 384;
  params.anneal.seed = 3;
  const graph::EmbeddedSampler sampler(king, params);
  const strqubo::StringConstraintSolver solver(sampler);
  EXPECT_TRUE(solver.solve(strqubo::Palindrome{2}).satisfied);
}

TEST(CrossTopology, CompleteGraphEmbedsChainFree) {
  const auto model = strqubo::build_includes("abcabc", "abc");
  const graph::Graph complete =
      graph::make_complete(model.num_variables());
  graph::EmbeddedSamplerParams params;
  params.anneal.num_reads = 32;
  params.anneal.seed = 4;
  const graph::EmbeddedSampler sampler(complete, params);
  graph::EmbeddedSampleStats stats;
  const auto samples = sampler.sample_with_stats(model, stats);
  EXPECT_EQ(stats.embedding.max_chain_length(), 1u);
  EXPECT_EQ(stats.physical_variables, model.num_variables());
  EXPECT_FALSE(samples.empty());
}

TEST(NoiseThroughStack, MildNoiseStillSolvesStrings) {
  anneal::SimulatedAnnealerParams inner_params;
  inner_params.num_reads = 48;
  inner_params.num_sweeps = 384;
  inner_params.seed = 5;
  const anneal::SimulatedAnnealer inner(inner_params);
  anneal::NoisySamplerParams noise;
  noise.sigma = 0.05;  // Realistic hardware-ICE scale.
  noise.seed = 6;
  const anneal::NoisySampler sampler(inner, noise);
  const strqubo::StringConstraintSolver solver(sampler);
  EXPECT_TRUE(solver.solve(strqubo::Equality{"noise"}).satisfied);
  EXPECT_TRUE(solver.solve(strqubo::Palindrome{4}).satisfied);
}

TEST(RefinementLoop, ReverseAnnealPolishesCorruptedSolution) {
  // Forward-solve, corrupt two bits, reverse-anneal back to a verified
  // solution: the iterative-refinement workflow real annealers use.
  const strqubo::Constraint constraint = strqubo::RegexMatch{"a[bc]+", 5};
  const auto model = strqubo::build(constraint);

  anneal::SimulatedAnnealerParams forward_params;
  forward_params.num_reads = 32;
  forward_params.num_sweeps = 256;
  forward_params.seed = 7;
  const anneal::SimulatedAnnealer forward(forward_params);
  const auto first = forward.sample(model);
  std::vector<std::uint8_t> state = first.best().bits;
  state[3] ^= 1;
  state[17] ^= 1;

  anneal::ReverseAnnealerParams reverse_params;
  reverse_params.num_reads = 16;
  reverse_params.num_sweeps = 128;
  reverse_params.seed = 8;
  const anneal::ReverseAnnealer refiner(state, reverse_params);
  const auto refined = refiner.sample(model);
  const std::string decoded = strenc::decode_string(
      std::span(refined.best().bits).subspan(0, 35));
  EXPECT_TRUE(strqubo::verify_string(constraint, decoded)) << decoded;
}

TEST(AutotuneThroughStack, TunedBudgetSolvesTheConstraint) {
  const strqubo::Constraint constraint = strqubo::Palindrome{6};
  const auto model = strqubo::build(constraint);
  anneal::TuneParams tune;
  tune.seed = 9;
  tune.target_success = 0.8;
  const auto tuned = anneal::tune_sweeps(
      model,
      [&](std::span<const std::uint8_t> bits) {
        return strqubo::verify_string(
            constraint, strenc::decode_string(bits.subspan(0, 42)));
      },
      tune);
  ASSERT_TRUE(tuned.target_met);

  anneal::SimulatedAnnealerParams params;
  params.num_reads = 32;
  params.num_sweeps = tuned.sweeps;
  params.seed = 10;
  const anneal::SimulatedAnnealer annealer(params);
  const strqubo::StringConstraintSolver solver(annealer);
  EXPECT_TRUE(solver.solve(constraint).satisfied);
}

TEST(GenerateRenderSolve, WholeWorkflowAgreesWithDirectSolve) {
  // generator -> .smt2 -> engine::solve_script must agree (on sat-ness)
  // with solving the original constraint directly.
  anneal::SimulatedAnnealerParams params;
  params.num_reads = 48;
  params.num_sweeps = 384;
  params.seed = 11;
  const anneal::SimulatedAnnealer annealer(params);
  const strqubo::StringConstraintSolver direct(annealer);

  workload::GeneratorParams gp;
  gp.seed = 12;
  gp.max_length = 5;
  workload::Generator generator(gp);

  std::size_t compared = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto constraint = generator.next();
    const auto script = workload::to_smt2(constraint);
    if (!script) continue;
    const auto via_script = engine::solve_script(*script, annealer);
    const auto via_direct = direct.solve(constraint);
    if (via_direct.satisfied) {
      EXPECT_EQ(via_script.status, smtlib::CheckSatStatus::kSat)
          << strqubo::describe(constraint);
      EXPECT_TRUE(
          strqubo::verify_string(constraint, via_script.model_value))
          << strqubo::describe(constraint) << " model '"
          << via_script.model_value << "'";
      ++compared;
    }
  }
  EXPECT_GT(compared, 20u);
}

}  // namespace
}  // namespace qsmt

#include <gtest/gtest.h>

#include <vector>

#include "qubo/ising.hpp"
#include "util/rng.hpp"

namespace qsmt::qubo {
namespace {

QuboModel random_model(std::size_t n, Xoshiro256& rng) {
  QuboModel model(n);
  model.set_offset(rng.uniform() - 0.5);
  for (std::size_t i = 0; i < n; ++i)
    model.add_linear(i, rng.uniform() * 2.0 - 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < 0.5)
        model.add_quadratic(i, j, rng.uniform() * 2.0 - 1.0);
    }
  }
  return model;
}

TEST(SpinConversions, RoundTrip) {
  const std::vector<std::uint8_t> bits{1, 0, 1, 1, 0};
  const auto spins = bits_to_spins(bits);
  ASSERT_EQ(spins.size(), 5u);
  EXPECT_EQ(spins[0], 1);
  EXPECT_EQ(spins[1], -1);
  EXPECT_EQ(spins_to_bits(spins), bits);
}

TEST(IsingModel, AddCouplingSymmetricAndGrowing) {
  IsingModel ising;
  ising.h.resize(1, 0.0);
  ising.add_coupling(3, 1, 0.5);
  EXPECT_EQ(ising.num_variables(), 4u);
  EXPECT_DOUBLE_EQ(ising.coupling_at(1, 3), 0.5);
  EXPECT_DOUBLE_EQ(ising.coupling_at(3, 1), 0.5);
  EXPECT_DOUBLE_EQ(ising.coupling_at(0, 1), 0.0);
}

TEST(IsingModel, SelfCouplingThrows) {
  IsingModel ising;
  EXPECT_THROW(ising.add_coupling(2, 2, 1.0), std::invalid_argument);
}

TEST(IsingModel, EnergyEvaluates) {
  IsingModel ising;
  ising.h = {1.0, -0.5};
  ising.add_coupling(0, 1, 2.0);
  ising.offset = 0.25;
  const std::vector<std::int8_t> up_up{1, 1};
  EXPECT_DOUBLE_EQ(ising.energy(up_up), 0.25 + 1.0 - 0.5 + 2.0);
  const std::vector<std::int8_t> up_down{1, -1};
  EXPECT_DOUBLE_EQ(ising.energy(up_down), 0.25 + 1.0 + 0.5 - 2.0);
}

TEST(IsingModel, EnergySizeMismatchThrows) {
  IsingModel ising;
  ising.h = {0.0, 0.0};
  const std::vector<std::int8_t> spins{1};
  EXPECT_THROW(ising.energy(spins), std::invalid_argument);
}

TEST(QuboToIsing, PreservesEnergyForAllAssignments) {
  Xoshiro256 rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const QuboModel qubo = random_model(6, rng);
    const IsingModel ising = qubo_to_ising(qubo);
    for (int mask = 0; mask < 64; ++mask) {
      std::vector<std::uint8_t> bits(6);
      for (int i = 0; i < 6; ++i) bits[static_cast<std::size_t>(i)] = (mask >> i) & 1;
      const auto spins = bits_to_spins(bits);
      EXPECT_NEAR(qubo.energy(bits), ising.energy(spins), 1e-9);
    }
  }
}

TEST(IsingToQubo, PreservesEnergyForAllAssignments) {
  IsingModel ising;
  ising.h = {0.3, -0.7, 1.1};
  ising.add_coupling(0, 1, -0.4);
  ising.add_coupling(1, 2, 0.9);
  ising.offset = -2.0;
  const QuboModel qubo = ising_to_qubo(ising);
  for (int mask = 0; mask < 8; ++mask) {
    std::vector<std::uint8_t> bits(3);
    for (int i = 0; i < 3; ++i) bits[static_cast<std::size_t>(i)] = (mask >> i) & 1;
    const auto spins = bits_to_spins(bits);
    EXPECT_NEAR(qubo.energy(bits), ising.energy(spins), 1e-9);
  }
}

TEST(QuboIsingRoundTrip, RecoversEnergies) {
  Xoshiro256 rng(9);
  const QuboModel original = random_model(5, rng);
  const QuboModel round_tripped = ising_to_qubo(qubo_to_ising(original));
  for (int mask = 0; mask < 32; ++mask) {
    std::vector<std::uint8_t> bits(5);
    for (int i = 0; i < 5; ++i) bits[static_cast<std::size_t>(i)] = (mask >> i) & 1;
    EXPECT_NEAR(original.energy(bits), round_tripped.energy(bits), 1e-9);
  }
}

TEST(QuboToIsing, DiagonalOnlyModelHasNoCouplings) {
  QuboModel qubo(4);
  for (std::size_t i = 0; i < 4; ++i) qubo.add_linear(i, 1.0);
  const IsingModel ising = qubo_to_ising(qubo);
  EXPECT_TRUE(ising.coupling.empty());
  for (double h : ising.h) EXPECT_DOUBLE_EQ(h, 0.5);
  EXPECT_DOUBLE_EQ(ising.offset, 2.0);
}

}  // namespace
}  // namespace qsmt::qubo

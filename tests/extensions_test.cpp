// Tests for the extension operations (CharAt, NotContains), the
// parallel-tempering sampler, and the extra hardware topologies.
#include <gtest/gtest.h>

#include "anneal/exact.hpp"
#include "anneal/simulated_annealer.hpp"
#include "anneal/population.hpp"
#include "anneal/tempering.hpp"
#include "graph/embedding.hpp"
#include "graph/topologies.hpp"
#include "strenc/ascii7.hpp"
#include "strqubo/solver.hpp"
#include "strqubo/verify.hpp"
#include "util/rng.hpp"

namespace qsmt {
namespace {

anneal::SimulatedAnnealer fast_annealer(std::uint64_t seed) {
  anneal::SimulatedAnnealerParams p;
  p.num_reads = 48;
  p.num_sweeps = 256;
  p.seed = seed;
  return anneal::SimulatedAnnealer(p);
}

// --- CharAt ------------------------------------------------------------------

TEST(CharAt, BuildsStrongPinAndSoftBias) {
  const auto model = strqubo::build_char_at(4, 2, 'q');
  EXPECT_EQ(model.num_variables(), 28u);
  EXPECT_EQ(model.num_interactions(), 0u);
  // Pinned position uses ±2A; free positions only the 2-bit letter bias.
  const auto q_bits = strenc::encode_char('q');
  for (std::size_t b = 0; b < 7; ++b) {
    EXPECT_DOUBLE_EQ(model.linear_terms()[strenc::variable_index(2, b)],
                     q_bits[b] ? -2.0 : 2.0);
  }
  EXPECT_DOUBLE_EQ(model.linear_terms()[strenc::variable_index(0, 0)], -0.1);
}

TEST(CharAt, SolvesAndVerifies) {
  const auto annealer = fast_annealer(1);
  const strqubo::StringConstraintSolver solver(annealer);
  const auto result = solver.solve(strqubo::CharAt{5, 3, 'Z'});
  ASSERT_TRUE(result.text.has_value());
  EXPECT_TRUE(result.satisfied);
  EXPECT_EQ((*result.text)[3], 'Z');
}

TEST(CharAt, Validation) {
  EXPECT_THROW(strqubo::build_char_at(4, 4, 'a'), std::invalid_argument);
}

TEST(CharAt, VerifyString) {
  EXPECT_TRUE(strqubo::verify_string(strqubo::CharAt{3, 1, 'b'}, "abc"));
  EXPECT_FALSE(strqubo::verify_string(strqubo::CharAt{3, 1, 'b'}, "acc"));
  EXPECT_FALSE(strqubo::verify_string(strqubo::CharAt{3, 1, 'b'}, "ab"));
}

// --- NotContains ---------------------------------------------------------------

TEST(NotContains, AppendsAncillasPerWindow) {
  const auto model = strqubo::build_not_contains(4, "ab");
  // 28 string bits + per window (3 windows): 14 literals -> NOT ancillas for
  // the zero bits of "ab" plus 13 AND-chain ancillas.
  EXPECT_GT(model.num_variables(), 28u);
  EXPECT_GT(model.num_interactions(), 0u);
}

TEST(NotContains, GroundStatesAvoidSubstring) {
  // Exact check on the smallest instance (7 string bits + one window's
  // ancillas = 17 variables): no ground state may decode to "a".
  const auto model = strqubo::build_not_contains(1, "a");
  ASSERT_LE(model.num_variables(), 20u);
  const auto samples = anneal::ExactSolver().sample(model);
  const double ground = samples.lowest_energy();
  for (const auto& s : samples) {
    if (s.energy > ground + 1e-9) break;
    const std::string decoded =
        strenc::decode_string(std::span(s.bits).subspan(0, 7));
    EXPECT_NE(decoded, "a");
  }
}

TEST(NotContains, SolvesAndVerifies) {
  const auto annealer = fast_annealer(2);
  const strqubo::StringConstraintSolver solver(annealer);
  const auto result = solver.solve(strqubo::NotContains{5, "ab"});
  ASSERT_TRUE(result.text.has_value());
  EXPECT_TRUE(result.satisfied) << *result.text;
  EXPECT_EQ(result.text->find("ab"), std::string::npos);
}

TEST(NotContains, LongSubstringIsBiasOnly) {
  const auto model = strqubo::build_not_contains(2, "abc");
  EXPECT_EQ(model.num_variables(), 14u);  // Cannot occur: no windows.
  EXPECT_EQ(model.num_interactions(), 0u);
}

TEST(NotContains, VerifyString) {
  EXPECT_TRUE(strqubo::verify_string(strqubo::NotContains{4, "ab"}, "bbba"));
  EXPECT_FALSE(strqubo::verify_string(strqubo::NotContains{4, "ab"}, "xaby"));
  EXPECT_FALSE(strqubo::verify_string(strqubo::NotContains{4, "ab"}, "bba"));
}

TEST(NotContains, Validation) {
  EXPECT_THROW(strqubo::build_not_contains(4, ""), std::invalid_argument);
}

TEST(NotContains, MetaFunctions) {
  EXPECT_EQ(strqubo::constraint_name(strqubo::NotContains{4, "ab"}),
            "not-contains");
  EXPECT_EQ(strqubo::constraint_num_variables(strqubo::NotContains{4, "ab"}),
            28u);
  EXPECT_TRUE(strqubo::produces_string(strqubo::NotContains{4, "ab"}));
  EXPECT_EQ(strqubo::constraint_name(strqubo::CharAt{4, 0, 'a'}), "char-at");
}

// --- BoundedLength -------------------------------------------------------------

TEST(BoundedLength, AppendsOneSelectorPerCandidateLength) {
  const auto model = strqubo::build_bounded_length(8, 2, 6);
  EXPECT_EQ(model.num_variables(), 56u + 5u);  // 7*8 bits + 5 selectors.
  EXPECT_GT(model.num_interactions(), 0u);
}

TEST(BoundedLength, GroundEnergyIsZero) {
  EXPECT_DOUBLE_EQ(
      strqubo::expected_ground_energy(strqubo::BoundedLength{4, 1, 3}), 0.0);
  const auto model = strqubo::build_bounded_length(2, 1, 2);
  EXPECT_NEAR(anneal::ExactSolver().ground_energy(model), 0.0, 1e-9);
}

TEST(BoundedLength, ExactGroundStatesAreWellFormedBuffers) {
  const auto model = strqubo::build_bounded_length(2, 1, 2);  // 16 vars.
  const auto samples = anneal::ExactSolver().sample(model);
  const double ground = samples.lowest_energy();
  std::size_t inspected = 0;
  for (const auto& s : samples) {
    if (s.energy > ground + 1e-9) break;
    const std::string decoded =
        strenc::decode_string(std::span(s.bits).subspan(0, 14));
    EXPECT_TRUE(strqubo::verify_string(strqubo::BoundedLength{2, 1, 2},
                                       decoded))
        << "bits decode to invalid buffer";
    ++inspected;
  }
  EXPECT_GT(inspected, 0u);
}

TEST(BoundedLength, SolvesAndVerifies) {
  const auto annealer = fast_annealer(9);
  const strqubo::StringConstraintSolver solver(annealer);
  const auto result = solver.solve(strqubo::BoundedLength{8, 2, 6});
  ASSERT_TRUE(result.text.has_value());
  EXPECT_TRUE(result.satisfied);
  const auto first_nul = result.text->find('\0');
  const std::size_t content =
      first_nul == std::string::npos ? result.text->size() : first_nul;
  EXPECT_GE(content, 2u);
  EXPECT_LE(content, 6u);
}

TEST(BoundedLength, VerifyString) {
  using std::string_literals::operator""s;
  const strqubo::BoundedLength c{4, 2, 3};
  EXPECT_TRUE(strqubo::verify_string(c, "ab\0\0"s));
  EXPECT_TRUE(strqubo::verify_string(c, "abc\0"s));
  EXPECT_FALSE(strqubo::verify_string(c, "a\0\0\0"s));   // Too short.
  EXPECT_FALSE(strqubo::verify_string(c, "abcd"s));      // Too long.
  EXPECT_FALSE(strqubo::verify_string(c, "ab\0c"s));     // Hole in padding.
  EXPECT_FALSE(strqubo::verify_string(c, "ab\0"s));      // Wrong capacity.
}

TEST(BoundedLength, Validation) {
  EXPECT_THROW(strqubo::build_bounded_length(4, 3, 2), std::invalid_argument);
  EXPECT_THROW(strqubo::build_bounded_length(4, 1, 5), std::invalid_argument);
  EXPECT_NO_THROW(strqubo::build_bounded_length(4, 4, 4));
}

// --- ParallelTempering ---------------------------------------------------------

qubo::QuboModel random_model(std::size_t n, Xoshiro256& rng) {
  qubo::QuboModel model(n);
  for (std::size_t i = 0; i < n; ++i)
    model.add_linear(i, rng.uniform() * 2.0 - 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < 0.4)
        model.add_quadratic(i, j, rng.uniform() * 2.0 - 1.0);
    }
  }
  return model;
}

TEST(ParallelTempering, RejectsInvalidParams) {
  anneal::ParallelTemperingParams p;
  p.num_replicas = 1;
  EXPECT_THROW(anneal::ParallelTempering{p}, std::invalid_argument);
  p = {};
  p.num_reads = 0;
  EXPECT_THROW(anneal::ParallelTempering{p}, std::invalid_argument);
}

TEST(ParallelTempering, FindsGroundOfRandomModels) {
  for (std::uint64_t seed : {3u, 4u, 5u, 6u}) {
    Xoshiro256 rng(seed);
    const auto model = random_model(12, rng);
    const double ground = anneal::ExactSolver().ground_energy(model);
    anneal::ParallelTemperingParams p;
    p.seed = seed;
    const anneal::ParallelTempering sampler(p);
    EXPECT_NEAR(sampler.sample(model).lowest_energy(), ground, 1e-9)
        << "seed " << seed;
  }
}

TEST(ParallelTempering, DeterministicForFixedSeed) {
  Xoshiro256 rng(9);
  const auto model = random_model(10, rng);
  anneal::ParallelTemperingParams p;
  p.seed = 33;
  const anneal::ParallelTempering sampler(p);
  const auto a = sampler.sample(model);
  const auto b = sampler.sample(model);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].bits, b[i].bits);
}

TEST(ParallelTempering, SolvesStringConstraints) {
  anneal::ParallelTemperingParams p;
  p.seed = 8;
  const anneal::ParallelTempering sampler(p);
  const strqubo::StringConstraintSolver solver(sampler);
  EXPECT_TRUE(solver.solve(strqubo::Palindrome{6}).satisfied);
  EXPECT_TRUE(solver.solve(strqubo::Equality{"pt"}).satisfied);
}

TEST(ParallelTempering, NameIsStable) {
  EXPECT_EQ(anneal::ParallelTempering().name(), "parallel-tempering");
}

// --- PopulationAnnealing -------------------------------------------------------

TEST(PopulationAnnealing, RejectsInvalidParams) {
  anneal::PopulationAnnealingParams p;
  p.population_size = 1;
  EXPECT_THROW(anneal::PopulationAnnealing{p}, std::invalid_argument);
  p = {};
  p.num_temperatures = 1;
  EXPECT_THROW(anneal::PopulationAnnealing{p}, std::invalid_argument);
  p = {};
  p.sweeps_per_step = 0;
  EXPECT_THROW(anneal::PopulationAnnealing{p}, std::invalid_argument);
}

TEST(PopulationAnnealing, FindsGroundOfRandomModels) {
  for (std::uint64_t seed : {20u, 21u, 22u}) {
    Xoshiro256 rng(seed);
    const auto model = random_model(12, rng);
    const double ground = anneal::ExactSolver().ground_energy(model);
    anneal::PopulationAnnealingParams p;
    p.seed = seed;
    const anneal::PopulationAnnealing sampler(p);
    EXPECT_NEAR(sampler.sample(model).lowest_energy(), ground, 1e-9)
        << "seed " << seed;
  }
}

TEST(PopulationAnnealing, DeterministicForFixedSeed) {
  Xoshiro256 rng(23);
  const auto model = random_model(10, rng);
  anneal::PopulationAnnealingParams p;
  p.seed = 4;
  const anneal::PopulationAnnealing sampler(p);
  const auto a = sampler.sample(model);
  const auto b = sampler.sample(model);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].bits, b[i].bits);
}

TEST(PopulationAnnealing, SolvesStringConstraints) {
  anneal::PopulationAnnealingParams p;
  p.seed = 6;
  const anneal::PopulationAnnealing sampler(p);
  const strqubo::StringConstraintSolver solver(sampler);
  EXPECT_TRUE(solver.solve(strqubo::Palindrome{6}).satisfied);
  EXPECT_TRUE(solver.solve(strqubo::RegexMatch{"a[bc]+", 4}).satisfied);
}

TEST(PopulationAnnealing, NameIsStable) {
  EXPECT_EQ(anneal::PopulationAnnealing().name(), "population-annealing");
}

// --- Topologies ---------------------------------------------------------------

TEST(Topologies, GridCounts) {
  const auto g = graph::make_grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3u + 2u * 4u);  // r*(c-1) + (r-1)*c.
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_FALSE(g.has_edge(0, 5));
}

TEST(Topologies, KingAddsDiagonals) {
  const auto g = graph::make_king(3, 3);
  EXPECT_EQ(g.num_nodes(), 9u);
  EXPECT_TRUE(g.has_edge(0, 4));  // Diagonal.
  EXPECT_TRUE(g.has_edge(1, 3));  // Anti-diagonal.
  // Centre of a 3x3 king lattice touches everything.
  EXPECT_EQ(g.degree(4), 8u);
}

TEST(Topologies, CompleteGraph) {
  const auto g = graph::make_complete(6);
  EXPECT_EQ(g.num_edges(), 15u);
  for (std::size_t v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(Topologies, CompleteBipartite) {
  const auto g = graph::make_complete_bipartite(3, 4);
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(0, 1));  // Same side.
  EXPECT_FALSE(g.has_edge(3, 4));
}

TEST(Topologies, Validation) {
  EXPECT_THROW(graph::make_grid(0, 3), std::invalid_argument);
  EXPECT_THROW(graph::make_king(3, 0), std::invalid_argument);
  EXPECT_THROW(graph::make_complete(0), std::invalid_argument);
  EXPECT_THROW(graph::make_complete_bipartite(0, 2), std::invalid_argument);
}

TEST(Topologies, KingEmbedsDenserProblemsThanGrid) {
  // K4 requires a minor with crossing connections: king handles it in one
  // 2x2 block neighbourhood; the plain grid needs chains.
  const auto k4 = graph::make_complete(4);
  const auto king = graph::make_king(4, 4);
  const auto grid = graph::make_grid(4, 4);
  const auto king_embedding = graph::find_embedding(k4, king, 3, 8);
  const auto grid_embedding = graph::find_embedding(k4, grid, 3, 8);
  ASSERT_TRUE(king_embedding.has_value());
  ASSERT_TRUE(grid_embedding.has_value());
  EXPECT_LE(king_embedding->total_physical(),
            grid_embedding->total_physical());
}

}  // namespace
}  // namespace qsmt

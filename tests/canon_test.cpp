// Pins for the alpha-equivalence canonicalizer (src/canon/canon.hpp): the
// renaming is deterministic and order-stable, commutative normalization is
// idempotent, alpha-variant scripts collide to one canonical form, and —
// the soundness edge — scripts that differ in anything *beyond* names and
// commutative order (length bounds, targets, BuildOptions) never collide.
#include "canon/canon.hpp"

#include <gtest/gtest.h>

#include <string>

#include "smtlib/parser.hpp"

namespace qsmt::canon {
namespace {

CanonicalScript canon_of(const std::string& script) {
  CanonicalScript result = canonicalize_script(script);
  EXPECT_TRUE(result.cacheable) << result.note;
  return result;
}

TEST(CanonTest, RenamesVariablesToPositionalNormalForm) {
  const CanonicalScript canonical = canon_of(
      "(declare-const hello String)\n"
      "(assert (= hello \"abc\"))\n"
      "(check-sat)\n");
  EXPECT_EQ(canonical.text,
            "(declare-const v0 String)\n"
            "(assert (= \"abc\" v0))\n"
            "(check-sat)\n");
  ASSERT_EQ(canonical.renaming.size(), 1u);
  EXPECT_EQ(canonical.renaming[0].first, "hello");
  EXPECT_EQ(canonical.renaming[0].second, "v0");
  EXPECT_EQ(original_name(canonical, "v0"), "hello");
  EXPECT_EQ(canonical_name(canonical, "hello"), "v0");
  EXPECT_EQ(original_name(canonical, "v7"), "");
  EXPECT_EQ(canonical_name(canonical, "nope"), "");
}

TEST(CanonTest, AlphaVariantScriptsCollide) {
  const CanonicalScript a = canon_of(
      "(declare-const x String)\n"
      "(assert (= x \"ab\"))\n"
      "(assert (str.contains x \"a\"))\n"
      "(check-sat)\n");
  // Different name, different assertion order: same formula.
  const CanonicalScript b = canon_of(
      "(declare-const query_string String)\n"
      "(assert (str.contains query_string \"a\"))\n"
      "(assert (= query_string \"ab\"))\n"
      "(check-sat)\n");
  EXPECT_EQ(a.text, b.text);
  const strqubo::BuildOptions options;
  EXPECT_EQ(script_answer_key(a, options), script_answer_key(b, options));
}

TEST(CanonTest, CommutativeArgumentOrderErased) {
  const CanonicalScript a = canon_of(
      "(declare-const x String)\n"
      "(assert (and (str.contains x \"a\") (= (str.len x) 3)))\n"
      "(check-sat)\n");
  const CanonicalScript b = canon_of(
      "(declare-const x String)\n"
      "(assert (and (= (str.len x) 3) (str.contains x \"a\")))\n"
      "(check-sat)\n");
  EXPECT_EQ(a.text, b.text);
}

TEST(CanonTest, NormalizeTermIsIdempotent) {
  const auto commands = smtlib::parse_script(
      "(declare-const x String)\n"
      "(assert (and (str.contains x \"b\") (and (= x \"ab\") "
      "(str.contains x \"a\"))))\n"
      "(check-sat)\n");
  smtlib::TermPtr term;
  for (const auto& command : commands) {
    if (const auto* assert_cmd = std::get_if<smtlib::AssertCmd>(&command)) {
      term = assert_cmd->term;
    }
  }
  ASSERT_NE(term, nullptr);
  const smtlib::TermPtr once = normalize_term(term);
  const smtlib::TermPtr twice = normalize_term(once);
  EXPECT_EQ(smtlib::to_string(once), smtlib::to_string(twice));
  // Nested same-op `and`s flatten into one argument list.
  EXPECT_EQ(once->args.size(), 3u);
}

TEST(CanonTest, ErasedPrintHidesNamesOnly) {
  const auto commands = smtlib::parse_script(
      "(declare-const longname String)\n"
      "(assert (str.contains longname \"a\"))\n"
      "(check-sat)\n");
  for (const auto& command : commands) {
    if (const auto* assert_cmd = std::get_if<smtlib::AssertCmd>(&command)) {
      EXPECT_EQ(erased_print(assert_cmd->term), "(str.contains ? \"a\")");
    }
  }
}

TEST(CanonTest, DifferentLengthBoundsDoNotCollide) {
  const CanonicalScript three = canon_of(
      "(declare-const x String)\n"
      "(assert (= (str.len x) 3))\n"
      "(assert (str.contains x \"a\"))\n"
      "(check-sat)\n");
  const CanonicalScript four = canon_of(
      "(declare-const x String)\n"
      "(assert (= (str.len x) 4))\n"
      "(assert (str.contains x \"a\"))\n"
      "(check-sat)\n");
  EXPECT_NE(three.text, four.text);
  const strqubo::BuildOptions options;
  EXPECT_NE(script_answer_key(three, options),
            script_answer_key(four, options));
}

TEST(CanonTest, DifferentBuildOptionsDoNotCollide) {
  const CanonicalScript canonical = canon_of(
      "(declare-const x String)\n"
      "(assert (= x \"ab\"))\n"
      "(check-sat)\n");
  strqubo::BuildOptions a;
  strqubo::BuildOptions b;
  b.strength = a.strength * 2.0;
  EXPECT_NE(script_answer_key(canonical, a), script_answer_key(canonical, b));

  const strqubo::Constraint constraint = strqubo::Equality{"ab"};
  EXPECT_NE(constraint_answer_key(constraint, a),
            constraint_answer_key(constraint, b));
}

TEST(CanonTest, ConstraintKeyErasesOrderAndMultiplicity) {
  const strqubo::Constraint eq = strqubo::Equality{"ab"};
  const strqubo::Constraint rev = strqubo::Reverse{"ab"};
  const strqubo::BuildOptions options;
  EXPECT_EQ(constraint_answer_key({eq, rev}, options),
            constraint_answer_key({rev, eq, rev}, options));
  EXPECT_NE(constraint_answer_key({eq}, options),
            constraint_answer_key({rev}, options));
  // Structurally different payloads of the same op family stay distinct.
  EXPECT_NE(constraint_answer_key(strqubo::Equality{"ab"}, options),
            constraint_answer_key(strqubo::Equality{"ba"}, options));
  EXPECT_NE(
      constraint_answer_key(strqubo::Palindrome{3}, options),
      constraint_answer_key(strqubo::Palindrome{4}, options));
}

TEST(CanonTest, ConstraintAndScriptKeySpacesAreDisjoint) {
  const strqubo::BuildOptions options;
  const std::string constraint_key =
      constraint_answer_key(strqubo::Equality{"ab"}, options);
  const CanonicalScript canonical = canon_of(
      "(declare-const x String)\n"
      "(assert (= x \"ab\"))\n"
      "(check-sat)\n");
  EXPECT_NE(constraint_key, script_answer_key(canonical, options));
}

TEST(CanonTest, OutsideFragmentIsNotCacheable) {
  const char* rejected[] = {
      // No check-sat.
      "(declare-const x String)\n(assert (= x \"a\"))\n",
      // Two check-sats.
      "(declare-const x String)\n(check-sat)\n(check-sat)\n",
      // Stateful scoping.
      "(declare-const x String)\n(push 1)\n(check-sat)\n",
      // Output-bearing command a cached verdict cannot answer.
      "(declare-const x String)\n(check-sat)\n(get-model)\n",
      // Undeclared variable.
      "(assert (= y \"a\"))\n(check-sat)\n",
      // Assertion after the check-sat.
      "(declare-const x String)\n(check-sat)\n(assert (= x \"a\"))\n",
      // Unparseable.
      "(assert (= x \"a\")",
  };
  for (const char* script : rejected) {
    const CanonicalScript canonical = canonicalize_script(script);
    EXPECT_FALSE(canonical.cacheable) << script;
    EXPECT_FALSE(canonical.note.empty()) << script;
    EXPECT_EQ(script_answer_key(canonical, strqubo::BuildOptions{}), "");
  }
}

TEST(CanonTest, RenamingIsStableAcrossRepeatedCalls) {
  const std::string script =
      "(declare-const b String)\n"
      "(declare-const a String)\n"
      "(assert (str.contains a \"x\"))\n"
      "(assert (str.contains b \"y\"))\n"
      "(check-sat)\n";
  const CanonicalScript first = canon_of(script);
  const CanonicalScript second = canon_of(script);
  EXPECT_EQ(first.text, second.text);
  EXPECT_EQ(first.renaming, second.renaming);
}

TEST(CanonTest, UnusedDeclaredVariablesFollowDeclarationOrder) {
  const CanonicalScript canonical = canon_of(
      "(declare-const unused String)\n"
      "(declare-const used String)\n"
      "(assert (= used \"a\"))\n"
      "(check-sat)\n");
  // First-use over the sorted assertions names `used` v0; the never-used
  // declaration trails in declaration order as v1.
  EXPECT_EQ(canonical_name(canonical, "used"), "v0");
  EXPECT_EQ(canonical_name(canonical, "unused"), "v1");
}

}  // namespace
}  // namespace qsmt::canon

// Answer-cache differential fuzzing: 220 seeded constraint jobs across 11
// operation families solved cold (no cache) and through a warming cache,
// plus alpha-renamed/argument-permuted script duplicates. The contract:
//
//  * a first (miss) solve through the cache-enabled service is byte-
//    identical to the cache-less reference solve under the same seed;
//  * a duplicate submission — same constraint, different seed — is served
//    from the cache with a byte-identical verdict, witness, and position
//    (winner "answer-cache", zero sampling attempts);
//  * a script that differs from an already-solved one only in variable
//    names, assertion order, and commutative argument order hits the same
//    entry, with the model variable remapped to the querying script's own
//    name;
//  * no verified entry ever fails its hit confirmation (zero fallbacks).
//
// A single-member portfolio keeps witnesses a deterministic function of
// (payload, seed), so "byte-identical" is checkable, not probabilistic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "canon/answer_cache.hpp"
#include "service/service.hpp"
#include "strqubo/constraint.hpp"
#include "util/rng.hpp"

namespace qsmt {
namespace {

constexpr std::size_t kCasesPerKind = 20;

std::string random_word(Xoshiro256& rng, std::size_t min_len,
                        std::size_t max_len) {
  std::string word(min_len + rng.below(max_len - min_len + 1), 'a');
  for (char& c : word) c = static_cast<char>('a' + rng.below(5));
  return word;
}

/// 11 operation families, kCasesPerKind seeded cases each, all satisfiable
/// (the same size envelope the differential suite proves the annealer
/// solves at a 100% rate).
std::vector<strqubo::Constraint> fuzz_cases(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<strqubo::Constraint> cases;
  for (std::size_t i = 0; i < kCasesPerKind; ++i) {
    cases.push_back(strqubo::Equality{random_word(rng, 2, 6)});
    cases.push_back(
        strqubo::Concat{random_word(rng, 1, 3), random_word(rng, 1, 3)});
    cases.push_back(
        strqubo::Includes{random_word(rng, 3, 7), random_word(rng, 1, 3)});
    const std::size_t string_length = 2 + rng.below(5);
    cases.push_back(
        strqubo::Length{string_length, rng.below(string_length + 1)});
    cases.push_back(strqubo::Replace{random_word(rng, 2, 6),
                                     static_cast<char>('a' + rng.below(5)),
                                     static_cast<char>('a' + rng.below(5))});
    cases.push_back(strqubo::ReplaceAll{
        random_word(rng, 2, 6), static_cast<char>('a' + rng.below(5)),
        static_cast<char>('a' + rng.below(5))});
    cases.push_back(strqubo::Reverse{random_word(rng, 2, 6)});
    cases.push_back(
        strqubo::SubstringMatch{3 + rng.below(3), random_word(rng, 1, 2)});
    const std::size_t index_length = 3 + rng.below(2);
    const std::string needle = random_word(rng, 1, 2);
    cases.push_back(strqubo::IndexOf{
        index_length, needle, rng.below(index_length - needle.size() + 1)});
    const std::size_t char_length = 2 + rng.below(4);
    cases.push_back(strqubo::CharAt{char_length, rng.below(char_length),
                                    static_cast<char>('a' + rng.below(5))});
    cases.push_back(strqubo::Palindrome{1 + rng.below(5)});
  }
  return cases;
}

service::ServiceOptions fuzz_service(
    std::shared_ptr<canon::AnswerCache> cache) {
  anneal::SimulatedAnnealerParams deep;
  deep.num_reads = 64;
  deep.num_sweeps = 512;
  service::ServiceOptions options;
  options.num_workers = 2;
  options.portfolio = {service::simulated_annealing_member("sa", deep)};
  options.answer_cache = std::move(cache);
  return options;
}

TEST(AnswerFuzz, WarmedConstraintVerdictsAreByteIdenticalAcrossFamilies) {
  const std::vector<strqubo::Constraint> cases = fuzz_cases(0xAC0);
  ASSERT_GE(cases.size(), 200u);

  auto cache = std::make_shared<canon::AnswerCache>();
  service::SolveService reference(fuzz_service(nullptr));
  service::SolveService warm(fuzz_service(cache));

  for (std::size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE("case " + std::to_string(i) + ": " +
                 strqubo::describe(cases[i]));
    service::JobOptions job;
    job.seed = 0xAC10000 + i;
    const service::JobResult cold = reference.submit(cases[i], job).get();
    const service::JobResult first = warm.submit(cases[i], job).get();
    ASSERT_EQ(cold.status, smtlib::CheckSatStatus::kSat);
    EXPECT_EQ(first.status, cold.status);
    if (!first.answer_cache_hit) {
      // A genuine miss under the same seed is the reference solve, byte
      // for byte. (Generator collisions within a family legitimately hit
      // an earlier case's entry instead.)
      EXPECT_EQ(first.text, cold.text);
      EXPECT_EQ(first.position, cold.position);
    }

    // The duplicate changes ONLY the seed: a cold solve could pick another
    // witness, so byte-equality here proves it was served from the cache.
    service::JobOptions duplicate;
    duplicate.seed = 0xD0D0000 + i;
    const service::JobResult second = warm.submit(cases[i], duplicate).get();
    EXPECT_TRUE(second.answer_cache_hit);
    EXPECT_EQ(second.winner, "answer-cache");
    EXPECT_EQ(second.attempts, 0u);
    EXPECT_EQ(second.status, first.status);
    EXPECT_EQ(second.text, first.text);
    EXPECT_EQ(second.position, first.position);
  }

  const service::SolveService::Stats stats = warm.stats();
  EXPECT_GE(stats.answer_hits, cases.size());  // Every duplicate served.
  EXPECT_EQ(stats.answer_fallbacks, 0u);
  EXPECT_EQ(stats.answer_hits + stats.answer_misses, 2 * cases.size());
}

/// One fuzzed script case: the base form plus an alpha-renamed,
/// assertion-shuffled, operand-swapped variant of the same formula.
struct ScriptPair {
  std::string base;
  std::string variant;
  std::string variant_variable;
};

ScriptPair make_script_pair(Xoshiro256& rng, std::size_t index) {
  const std::size_t length = 2 + rng.below(2);
  const std::string word = random_word(rng, length, length);
  const std::string base_var = "x";
  const std::string variant_var = "fuzzed_q" + std::to_string(index);

  // Assertion builders; `flip` swaps commutative `=` operand order.
  const auto len_fact = [&](const std::string& var, bool flip) {
    const std::string len = std::to_string(length);
    return flip ? "(assert (= " + len + " (str.len " + var + ")))\n"
                : "(assert (= (str.len " + var + ") " + len + "))\n";
  };
  const auto prefix_fact = [&](const std::string& var) {
    return "(assert (str.prefixof \"" + word.substr(0, 1) + "\" " + var +
           "))\n";
  };
  const auto suffix_fact = [&](const std::string& var) {
    return "(assert (str.suffixof \"" + word.substr(word.size() - 1) + "\" " +
           var + "))\n";
  };
  const auto contains_fact = [&](const std::string& var) {
    return "(assert (str.contains " + var + " \"" +
           word.substr(rng.below(word.size()), 1) + "\"))\n";
  };

  std::vector<std::string> base_asserts = {
      len_fact(base_var, false), prefix_fact(base_var),
      suffix_fact(base_var)};
  std::vector<std::string> variant_asserts = {
      len_fact(variant_var, true), prefix_fact(variant_var),
      suffix_fact(variant_var)};
  if (rng.coin()) {
    const std::string shared = contains_fact(base_var);
    std::string renamed = shared;
    renamed.replace(renamed.find(base_var), base_var.size(), variant_var);
    base_asserts.push_back(shared);
    variant_asserts.push_back(renamed);
  }
  // Shuffle the variant's assertion order with a seeded rotation.
  std::rotate(variant_asserts.begin(),
              variant_asserts.begin() + rng.below(variant_asserts.size()),
              variant_asserts.end());

  ScriptPair pair;
  pair.base = "(declare-const " + base_var + " String)\n";
  for (const std::string& assert_line : base_asserts) pair.base += assert_line;
  pair.base += "(check-sat)\n";
  pair.variant = "(declare-const " + variant_var + " String)\n";
  for (const std::string& assert_line : variant_asserts) {
    pair.variant += assert_line;
  }
  pair.variant += "(check-sat)\n";
  pair.variant_variable = variant_var;
  return pair;
}

TEST(AnswerFuzz, AlphaRenamedAndPermutedScriptsHitByteIdentically) {
  constexpr std::size_t kPairs = 24;
  auto cache = std::make_shared<canon::AnswerCache>();
  service::SolveService warm(fuzz_service(cache));

  Xoshiro256 rng(0x5C21);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < kPairs; ++i) {
    const ScriptPair pair = make_script_pair(rng, i);
    SCOPED_TRACE("pair " + std::to_string(i) + ":\n" + pair.base + "--\n" +
                 pair.variant);
    service::JobOptions job;
    job.seed = 0x5C210000 + i;
    const service::JobResult cold = warm.submit_script(pair.base, job).get();
    ASSERT_EQ(cold.status, smtlib::CheckSatStatus::kSat);
    ASSERT_FALSE(cold.model_value.empty());

    service::JobOptions duplicate;
    duplicate.seed = 0x77210000 + i;
    const service::JobResult hit =
        warm.submit_script(pair.variant, duplicate).get();
    EXPECT_EQ(hit.status, smtlib::CheckSatStatus::kSat);
    if (hit.answer_cache_hit) {
      ++hits;
      EXPECT_EQ(hit.winner, "answer-cache");
      // Byte-identical witness, reported under the VARIANT's own variable.
      EXPECT_EQ(hit.model_value, cold.model_value);
      EXPECT_EQ(hit.variable, pair.variant_variable);
    }
  }
  // Every variant canonicalizes to its base's key: all of them must hit.
  EXPECT_EQ(hits, kPairs);
  EXPECT_EQ(warm.stats().answer_fallbacks, 0u);
}

}  // namespace
}  // namespace qsmt

#include <gtest/gtest.h>

#include "anneal/sample_set.hpp"

namespace qsmt::anneal {
namespace {

TEST(SampleSet, StartsEmpty) {
  SampleSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.total_reads(), 0u);
}

TEST(SampleSet, BestThrowsWhenEmpty) {
  SampleSet set;
  EXPECT_THROW(set.best(), std::out_of_range);
  EXPECT_THROW(set.lowest_energy(), std::out_of_range);
}

TEST(SampleSet, BestFindsLowestEnergy) {
  SampleSet set;
  set.add({1, 0}, 2.0);
  set.add({0, 1}, -1.0);
  set.add({1, 1}, 0.5);
  EXPECT_DOUBLE_EQ(set.lowest_energy(), -1.0);
  EXPECT_EQ(set.best().bits, (std::vector<std::uint8_t>{0, 1}));
}

TEST(SampleSet, SortByEnergyIsStable) {
  SampleSet set;
  set.add({0}, 1.0);
  set.add({1}, 1.0);
  set.add({0, 0}, 0.0);
  set.sort_by_energy();
  EXPECT_DOUBLE_EQ(set[0].energy, 0.0);
  // Equal energies keep insertion order.
  EXPECT_EQ(set[1].bits, (std::vector<std::uint8_t>{0}));
  EXPECT_EQ(set[2].bits, (std::vector<std::uint8_t>{1}));
}

TEST(SampleSet, AggregateMergesDuplicates) {
  SampleSet set;
  set.add({1, 0}, 2.0);
  set.add({1, 0}, 2.0);
  set.add({0, 1}, 1.0, 3);
  set.aggregate();
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set[0].bits, (std::vector<std::uint8_t>{0, 1}));
  EXPECT_EQ(set[0].num_occurrences, 3u);
  EXPECT_EQ(set[1].num_occurrences, 2u);
  EXPECT_EQ(set.total_reads(), 5u);
}

TEST(SampleSet, AggregateSortsResult) {
  SampleSet set;
  set.add({1}, 5.0);
  set.add({0}, -5.0);
  set.aggregate();
  EXPECT_DOUBLE_EQ(set[0].energy, -5.0);
}

TEST(SampleSet, TruncateKeepsPrefix) {
  SampleSet set;
  for (int i = 0; i < 5; ++i) set.add({static_cast<std::uint8_t>(i & 1)}, i);
  set.sort_by_energy();
  set.truncate(2);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_DOUBLE_EQ(set[1].energy, 1.0);
  set.truncate(10);  // No-op when already smaller.
  EXPECT_EQ(set.size(), 2u);
}

TEST(SampleSet, SuccessFractionCountsOccurrences) {
  SampleSet set;
  set.add({0}, 0.0, 3);   // Ground.
  set.add({1}, 1.0, 1);   // Excited.
  EXPECT_DOUBLE_EQ(set.success_fraction(0.0), 0.75);
  EXPECT_DOUBLE_EQ(set.success_fraction(1.0), 1.0);
  EXPECT_DOUBLE_EQ(set.success_fraction(-1.0), 0.0);
}

TEST(SampleSet, SuccessFractionToleranceWindow) {
  SampleSet set;
  set.add({0}, 1.0000001, 1);
  EXPECT_DOUBLE_EQ(set.success_fraction(1.0, 1e-6), 1.0);
  EXPECT_DOUBLE_EQ(set.success_fraction(1.0, 1e-9), 0.0);
}

TEST(SampleSet, SuccessFractionEmptySetIsZero) {
  SampleSet set;
  EXPECT_DOUBLE_EQ(set.success_fraction(0.0), 0.0);
}

TEST(SampleSet, RangeForIteration) {
  SampleSet set;
  set.add({0}, 1.0);
  set.add({1}, 2.0);
  double sum = 0.0;
  for (const Sample& s : set) sum += s.energy;
  EXPECT_DOUBLE_EQ(sum, 3.0);
}

}  // namespace
}  // namespace qsmt::anneal

// Server concurrency stress: >= 8 simultaneous socket sessions with
// exactly-once correct verdicts and no starvation, cross-connection
// sharing of the fused-batch path and the embedding cache, exactly-once
// cancellation of in-flight work on mid-session disconnect, and
// deterministic overload rejection under a saturated admission gate.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "anneal/exact.hpp"
#include "anneal/simulated_annealer.hpp"
#include "canon/answer_cache.hpp"
#include "graph/chimera.hpp"
#include "graph/embedding_cache.hpp"
#include "server/client.hpp"
#include "smtlib/driver.hpp"
#include "server/server.hpp"
#include "service/service.hpp"

namespace {

using namespace qsmt;
using namespace std::chrono_literals;

constexpr std::size_t kNumClients = 8;

service::ServiceOptions exact_service(std::size_t workers) {
  service::ServiceOptions options;
  options.num_workers = workers;
  options.portfolio = {service::exact_member("exact")};
  return options;
}

/// Eight concurrent socket sessions, each replaying a battery of scripts
/// with pinned verdicts over one connection (reset between scripts).
/// Every session must complete every script with the correct verdict —
/// exactly once, no starvation, no cross-tenant contamination.
TEST(ServerStress, ConcurrentSocketSessionsExactlyOnceVerdicts) {
  struct Script {
    const char* text;
    const char* expect;  // Expected reply to the whole batch.
  };
  const std::vector<Script> scripts = {
      {"(declare-const x String)(assert (= x \"ab\"))(check-sat)(get-model)",
       "sat\n(model (define-fun x () String \"ab\"))\n"},
      {"(assert (= \"a\" \"b\"))(check-sat)", "unsat\n"},
      {"(declare-const x String)(assert (= x \"k\"))(check-sat)"
       "(get-value (x))",
       "sat\n((x \"k\"))\n"},
      {"(declare-const x String)(assert (str.contains x \"q\"))"
       "(assert (= (str.len x) 2))(check-sat)",
       "sat\n"},
      {"(declare-const x String)(assert (= (str.len x) 3))"
       "(assert (= (str.len x) 4))(check-sat)",
       "unsat\n"},
  };

  server::ServerOptions options;
  options.service = exact_service(4);
  options.max_waiting = kNumClients * 2;
  server::Server node(options);
  const std::uint16_t port = node.listen(0);
  node.start();

  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kNumClients);
  for (std::size_t c = 0; c < kNumClients; ++c) {
    clients.emplace_back([&, c] {
      server::Client client;
      client.connect(port);
      // Each tenant cycles the battery from a different offset so the
      // pool sees a heterogeneous interleaving.
      for (std::size_t round = 0; round < 2 * scripts.size(); ++round) {
        const Script& script = scripts[(c + round) % scripts.size()];
        const std::string reply = client.request(script.text);
        if (reply != script.expect) failures.fetch_add(1);
        if (client.request("(reset)") != "") failures.fetch_add(1);
      }
      client.request("(exit)");
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0u);

  node.shutdown();
  const server::Server::Stats stats = node.stats();
  EXPECT_EQ(stats.sessions_opened, kNumClients);
  EXPECT_EQ(stats.sessions_closed, kNumClients);
  // Exactly-once accounting end to end: every check-sat the clients sent
  // became exactly one completed service job or a presolved local answer.
  const service::SolveService::Stats pool = node.service().stats();
  EXPECT_EQ(pool.jobs_submitted, pool.jobs_completed);
}

/// Cross-connection batch fusion: one worker, a batchable SA lane whose
/// first sampler construction blocks until every sibling session has
/// submitted. When the lane unblocks, the queued structure-identical jobs
/// from *different connections* must fuse into shared kernel invocations.
TEST(ServerStress, SiblingSessionsFuseIntoBatchedInvocations) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool release = false;
  std::atomic<bool> first{true};

  anneal::SimulatedAnnealerParams params;
  params.num_reads = 4;
  params.num_sweeps = 16;
  service::PortfolioMember member =
      service::simulated_annealing_member("sa", params);
  const auto original = member.make;
  member.make = [&, original](std::uint64_t seed, CancelToken cancel) {
    if (first.exchange(false)) {
      std::unique_lock<std::mutex> lock(gate_mutex);
      gate_cv.wait(lock, [&] { return release; });
    }
    return original(seed, cancel);
  };

  server::ServerOptions options;
  options.service.num_workers = 1;
  options.service.portfolio = {member};
  options.service.max_fused_jobs = 16;
  options.max_inflight = kNumClients;  // Admission must not serialize.
  server::Server node(options);
  const std::uint16_t port = node.listen(0);
  node.start();

  // All sessions assert the same structure (same length, same shape), so
  // their jobs share a structure key and are fusable.
  std::vector<std::thread> clients;
  std::atomic<std::size_t> sat_replies{0};
  for (std::size_t c = 0; c < kNumClients; ++c) {
    clients.emplace_back([&] {
      server::Client client;
      client.connect(port);
      const std::string reply = client.request(
          "(declare-const x String)(assert (= x \"fuse\"))(check-sat)");
      if (reply == "sat\n") sat_replies.fetch_add(1);
      client.request("(exit)");
    });
  }
  // Wait until every connection's job is queued behind the blocked lane,
  // then open the gate: the lone worker fuses the backlog.
  while (node.service().stats().jobs_submitted < kNumClients) {
    std::this_thread::sleep_for(1ms);
  }
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release = true;
  }
  gate_cv.notify_all();
  for (std::thread& client : clients) client.join();
  node.shutdown();

  EXPECT_EQ(sat_replies.load(), kNumClients);
  const service::SolveService::Stats pool = node.service().stats();
  // The first job ran solo (it was blocking the worker); the other seven
  // were queued and must have fused: at least one multi-job invocation.
  EXPECT_GE(pool.batch_invocations, 1u);
  EXPECT_GE(pool.jobs_fused, 2u);
  // Structure-identical jobs also share the prepared-model cache.
  EXPECT_GE(pool.model_cache_hits, 1u);
}

/// Cross-connection embedding-cache sharing: a single embedded lane with
/// an explicitly shared cache; eight sessions solve same-shaped queries,
/// so only the first pays the minor-embedding search.
TEST(ServerStress, SessionsShareTheEmbeddingCache) {
  auto cache = std::make_shared<graph::EmbeddingCache>();
  static graph::Graph target = graph::make_chimera(4, 4, 4);
  graph::EmbeddedSamplerParams embedded;
  embedded.anneal.num_reads = 8;
  embedded.anneal.num_sweeps = 48;
  embedded.embedding_cache = cache;

  server::ServerOptions options;
  options.service.num_workers = 2;
  options.service.portfolio = {
      service::embedded_member("embedded", target, embedded)};
  server::Server node(options);
  const std::uint16_t port = node.listen(0);
  node.start();

  std::vector<std::thread> clients;
  std::atomic<std::size_t> decided{0};
  for (std::size_t c = 0; c < kNumClients; ++c) {
    clients.emplace_back([&] {
      server::Client client;
      client.connect(port);
      const std::string reply = client.request(
          "(declare-const x String)(assert (= x \"ab\"))(check-sat)");
      if (reply == "sat\n") decided.fetch_add(1);
      client.request("(exit)");
    });
  }
  for (std::thread& client : clients) client.join();
  node.shutdown();

  EXPECT_EQ(decided.load(), kNumClients);
  // All eight tenants solved the same shape: one embedding search, the
  // rest warm hits on the shared cache.
  EXPECT_GE(cache->hits(), 1u);
  EXPECT_GE(cache->misses(), 1u);
}

/// A client that hangs up mid-solve gets its in-flight job cancelled
/// exactly once, the workers return to the pool, and the server keeps
/// serving other tenants.
TEST(ServerStress, MidSessionDisconnectCancelsInFlightExactlyOnce) {
  // A deep SA lane: long enough that the client's disconnect lands while
  // the solve is in flight, cancellable per sweep so the test stays fast.
  anneal::SimulatedAnnealerParams slow;
  slow.num_reads = 64;
  slow.num_sweeps = 300000;
  slow.early_exit = false;

  server::ServerOptions options;
  options.service.num_workers = 2;
  options.service.portfolio = {
      service::simulated_annealing_member("sa-slow", slow)};
  server::Server node(options);
  const std::uint16_t port = node.listen(0);
  node.start();

  {
    server::Client client;
    client.connect(port);
    client.request("(declare-const x String)");
    // Fire the check-sat and vanish without reading the reply.
    client.send("(assert (str.contains x \"abc\"))"
                "(assert (= (str.len x) 6))(check-sat)");
    std::this_thread::sleep_for(50ms);
    client.close();
  }

  // The liveness probe notices the disconnect, cancels the job exactly
  // once, and the session drains.
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (node.stats().sessions_closed < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(node.stats().sessions_closed, 1u);
  EXPECT_EQ(node.stats().disconnect_cancels, 1u);

  // The pool is healthy: a fresh tenant gets served immediately.
  server::Client verify;
  verify.connect(port);
  EXPECT_EQ(verify.request("(assert (= \"a\" \"a\"))(check-sat)"), "sat\n");
  verify.request("(exit)");
  node.shutdown();
  EXPECT_EQ(node.service().stats().jobs_submitted,
            node.service().stats().jobs_completed);
}

/// Long incremental chains from eight concurrent socket sessions: every
/// tenant's push/pop tower pins per-tenant forced witnesses, so any state
/// bleeding between sessions (witness memory, warm starts, assertion
/// stacks) would surface as a wrong model. The identical warm-up query all
/// tenants start with must share the service's structure-keyed prepared
/// cache across connections.
TEST(ServerStress, ConcurrentIncrementalChainsStayTenantIsolated) {
  server::ServerOptions options;
  options.service = exact_service(4);
  options.max_waiting = kNumClients * 4;
  server::Server node(options);
  const std::uint16_t port = node.listen(0);
  node.start();

  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kNumClients);
  for (std::size_t c = 0; c < kNumClients; ++c) {
    clients.emplace_back([&, c] {
      const char p = static_cast<char>('a' + c);
      const auto expect_model = [](char a, char b) {
        return "sat\n(model (define-fun x () String \"" + std::string(1, a) +
               std::string(1, b) + "\"))\n";
      };
      server::Client client;
      client.connect(port);
      client.request("(declare-const x String)"
                     "(assert (= (str.len x) 2))");
      // Shared warm-up: structurally identical across all tenants, so the
      // pool's prepared-model cache must serve most of them warm.
      if (client.request("(push 1)(assert (= x \"st\"))"
                         "(check-sat)(get-model)") != expect_model('s', 't')) {
        failures.fetch_add(1);
      }
      client.request("(pop 1)");
      // Private tower: per-tenant prefix, mutated suffix every round.
      client.request("(assert (str.prefixof \"" + std::string(1, p) +
                     "\" x))(push 1)");
      char q = 'k';
      for (std::size_t round = 0; round < 6; ++round) {
        q = static_cast<char>('k' + (c + round) % 6);
        const std::string reply = client.request(
            "(pop 1)(push 1)(assert (str.suffixof \"" + std::string(1, q) +
            "\" x))(check-sat)(get-model)");
        if (reply != expect_model(p, q)) failures.fetch_add(1);
      }
      // A pinned contradiction, then recovery to the surviving frame.
      if (client.request("(push 1)(assert (= x \"zz\"))(check-sat)") !=
          "unsat\n") {
        failures.fetch_add(1);
      }
      if (client.request("(pop 1)(check-sat)(get-model)") !=
          expect_model(p, q)) {
        failures.fetch_add(1);
      }
      client.request("(exit)");
    });
  }
  for (std::thread& client : clients) client.join();
  node.shutdown();

  EXPECT_EQ(failures.load(), 0u);
  const service::SolveService::Stats pool = node.service().stats();
  EXPECT_EQ(pool.jobs_submitted, pool.jobs_completed);
  // Eight tenants submitted the same warm-up structure; with four workers
  // at most four can miss the prepared cache concurrently.
  EXPECT_GE(pool.model_cache_hits, 1u);
}

/// The driver-level compiled-fragment cache is explicitly shareable across
/// drivers (server embeddings, bench harnesses). Blocks are immutable and
/// per-session state never enters the cache, so concurrent tenants sharing
/// one cache must still get their own forced witnesses.
TEST(ServerStress, SharedFragmentCacheNeverLeaksAcrossTenantDrivers) {
  const anneal::ExactSolver exact;
  const auto cache = std::make_shared<smtlib::FragmentCache>();
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> tenants;
  tenants.reserve(kNumClients);
  for (std::size_t c = 0; c < kNumClients; ++c) {
    tenants.emplace_back([&, c] {
      smtlib::SmtDriver driver(exact, strqubo::BuildOptions{}, cache);
      driver.run_script("(declare-const x String)"
                        "(assert (= (str.len x) 2))");
      // Shared phase: every tenant compiles the same two fragments.
      driver.run_script("(push 1)(assert (str.prefixof \"a\" x))"
                        "(assert (str.suffixof \"b\" x))(check-sat)");
      if (driver.history().back().model_value != "ab") failures.fetch_add(1);
      driver.run_script("(pop 1)");
      // Private phase: per-tenant, per-round forced equalities.
      for (std::size_t round = 0; round < 6; ++round) {
        const std::string target{static_cast<char>('a' + c),
                                 static_cast<char>('k' + round)};
        driver.run_script("(push 1)(assert (= x \"" + target +
                          "\"))(check-sat)(pop 1)");
        const auto& record = driver.history().back();
        if (record.status != smtlib::CheckSatStatus::kSat ||
            record.model_value != target) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& tenant : tenants) tenant.join();

  EXPECT_EQ(failures.load(), 0u);
  // The shared phase's fragments were built at most once per concurrent
  // miss; later tenants must have hit the shared cache.
  EXPECT_GE(cache->stats().hits, 1u);
}

/// Per-tenant adaptive routing under concurrency: half the tenants hammer
/// equality-shaped queries, half substring-shaped ones. Every tenant's
/// lazily-created router must learn ONLY its own mix — a single bucket,
/// exactly one decision per check-sat — and the two table populations must
/// split kNumClients/2 / kNumClients/2. Any cross-tenant leakage (a job
/// consulting or training another tenant's table) shows up as a mixed
/// table or an inflated decision count.
TEST(ServerStress, DivergentTenantMixesLearnIsolatedRouterTables) {
  constexpr std::size_t kRounds = 5;

  server::ServerOptions options;
  options.service.num_workers = 4;  // Default sa-fast/sa-deep portfolio.
  options.max_waiting = kNumClients * 2;
  route::RouterOptions routing;
  routing.min_observations = 2;  // One 2-member race makes a bucket confident.
  routing.min_win_rate = 0.5;
  routing.explore_period = 0;
  options.tenant_routing = routing;
  server::Server node(options);
  const std::uint16_t port = node.listen(0);
  node.start();

  // Two structurally disjoint workload mixes (single-constraint fast path:
  // equality vs substring-match — different router buckets by op family).
  const std::string equality_mix =
      "(declare-const x String)(assert (= x \"router\"))(check-sat)";
  const std::string substring_mix =
      "(declare-const x String)(assert (str.contains x \"cd\"))"
      "(assert (= (str.len x) 3))(check-sat)";

  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kNumClients);
  for (std::size_t c = 0; c < kNumClients; ++c) {
    clients.emplace_back([&, c] {
      const std::string& script = c % 2 == 0 ? equality_mix : substring_mix;
      server::Client client;
      client.connect(port);
      for (std::size_t round = 0; round < kRounds; ++round) {
        if (client.request(script) != "sat\n") failures.fetch_add(1);
        if (client.request("(reset)") != "") failures.fetch_add(1);
      }
      client.request("(exit)");
    });
  }
  for (std::thread& client : clients) client.join();
  node.shutdown();
  EXPECT_EQ(failures.load(), 0u);

  // Tenant ids are assigned in accept order, so a client thread's mix
  // cannot be matched to a tenant id — but purity can: every tenant's
  // table must hold exactly one bucket, from exactly one mix.
  std::size_t equality_tenants = 0;
  std::size_t substring_tenants = 0;
  std::uint64_t routed_total = 0;
  for (std::uint64_t tenant = 0; tenant < kNumClients; ++tenant) {
    SCOPED_TRACE("tenant " + std::to_string(tenant));
    const std::shared_ptr<route::Router> router = node.tenant_router(tenant);
    ASSERT_NE(router, nullptr);
    const std::vector<route::BucketRecord> table = router->table();
    ASSERT_EQ(table.size(), 1u);
    const std::string& bucket = table[0].bucket;
    if (bucket.rfind("equality/", 0) == 0) {
      ++equality_tenants;
    } else if (bucket.rfind("substring-match/", 0) == 0) {
      ++substring_tenants;
    } else {
      ADD_FAILURE() << "unexpected bucket: " << bucket;
    }
    // Exactly this tenant's own check-sats consulted the table; after the
    // first race trains the bucket, the remaining rounds route.
    const route::RouterStats stats = router->stats();
    EXPECT_EQ(stats.decisions, kRounds);
    EXPECT_GE(stats.routed, kRounds - 2);
    routed_total += stats.routed;
  }
  EXPECT_EQ(equality_tenants, kNumClients / 2);
  EXPECT_EQ(substring_tenants, kNumClients / 2);
  // Every routed dispatch in the pool is accounted to exactly one tenant
  // table — the shared service saw the same number it executed.
  EXPECT_EQ(node.service().stats().jobs_routed, routed_total);
}

/// Concurrent tenants sharing one canonical answer cache: half hammer one
/// formula, half another, every tenant under its own variable name (alpha
/// variants, so cross-tenant hits exercise the witness remapping). Both
/// formulas force unique witnesses, so ANY cross-tenant contamination — a
/// witness observed outside a legitimate canonical-key hit — surfaces as a
/// byte-wrong model reply. Per-tenant Session::Stats::answer_hits must be
/// bumped exactly once per served hit, summing to the pool's answer_hits.
TEST(ServerStress, TenantsShareTheAnswerCacheWithoutWitnessLeaks) {
  constexpr std::size_t kRounds = 4;
  auto answers = std::make_shared<canon::AnswerCache>();
  service::ServiceOptions pool_options = exact_service(4);
  pool_options.answer_cache = answers;
  service::SolveService pool(pool_options);

  std::vector<std::unique_ptr<server::Session>> sessions;
  sessions.reserve(kNumClients);
  for (std::size_t c = 0; c < kNumClients; ++c) {
    server::SessionOptions session_options;
    session_options.tenant = c;
    session_options.seed = c;
    sessions.push_back(
        std::make_unique<server::Session>(pool, session_options));
  }

  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> tenants;
  tenants.reserve(kNumClients);
  for (std::size_t c = 0; c < kNumClients; ++c) {
    tenants.emplace_back([&, c] {
      server::Session& session = *sessions[c];
      // Per-tenant variable name: tenants only ever collide via the
      // alpha-equivalence canonical key, never via shared text.
      const std::string var = "tenant" + std::to_string(c) + "_x";
      // Even tenants force the unique witness "aa" (single-constraint fast
      // path); odd tenants force the unique witness "bc" (script path, so
      // the cached variable is remapped through each tenant's renaming).
      const std::string script =
          c % 2 == 0
              ? "(declare-const " + var + " String)(assert (= " + var +
                    " \"aa\"))(check-sat)(get-model)"
              : "(declare-const " + var + " String)(assert (str.prefixof "
                    "\"b\" " + var + "))(assert (str.suffixof \"c\" " + var +
                    "))(assert (= (str.len " + var + ") 2))"
                    "(check-sat)(get-model)";
      const std::string expect = "sat\n(model (define-fun " + var +
                                 " () String \"" +
                                 (c % 2 == 0 ? "aa" : "bc") + "\"))\n";
      for (std::size_t round = 0; round < kRounds; ++round) {
        if (session.consume(script) != expect) failures.fetch_add(1);
        if (session.consume("(reset)") != "") failures.fetch_add(1);
      }
    });
  }
  for (std::thread& tenant : tenants) tenant.join();
  EXPECT_EQ(failures.load(), 0u);

  const service::SolveService::Stats stats = pool.stats();
  // One lookup disposition per check-sat, and a verified hit never falls
  // back here (entries are only ever written by verified completions).
  EXPECT_EQ(stats.answer_hits + stats.answer_misses, kNumClients * kRounds);
  EXPECT_EQ(stats.answer_fallbacks, 0u);
  // Worst case every tenant's first round misses concurrently; every later
  // round must be served from the shared cache.
  EXPECT_GE(stats.answer_hits, kNumClients * (kRounds - 1));
  // Two formulas, two canonical entries — tenant count does not inflate it.
  EXPECT_EQ(answers->size(), 2u);
  EXPECT_EQ(answers->stats().hits, stats.answer_hits + stats.answer_fallbacks);
  EXPECT_EQ(answers->stats().misses, stats.answer_misses);

  // Exactly-once per-tenant accounting: the sessions' counters partition
  // the pool's.
  std::uint64_t session_hits = 0;
  for (const auto& session : sessions) {
    session_hits += session->stats().answer_hits;
  }
  EXPECT_EQ(session_hits, stats.answer_hits);
}

/// Deterministic overload: with the single admission slot held and a line
/// of length one, the second queued tenant is turned away with an error
/// reply while the first eventually completes.
TEST(ServerStress, OverloadRejectsBeyondTheWaitingLine) {
  server::ServerOptions options;
  options.service = exact_service(2);
  options.max_inflight = 1;
  options.max_waiting = 1;
  server::Server node(options);
  const std::uint16_t port = node.listen(0);
  node.start();

  // Hold the only slot so check-sats queue deterministically.
  ASSERT_EQ(node.gate().acquire(),
            server::AdmissionGate::Outcome::kAdmitted);

  server::Client waiter;
  waiter.connect(port);
  waiter.request("(declare-const x String)");
  waiter.send("(assert (= x \"w\"))(check-sat)");
  while (node.gate().stats().waiting < 1) {
    std::this_thread::sleep_for(1ms);
  }

  server::Client rejected;
  rejected.connect(port);
  rejected.request("(declare-const x String)");
  const std::string reply =
      rejected.request("(assert (= x \"r\"))(check-sat)");
  EXPECT_NE(reply.find("(error \"server overloaded"), std::string::npos);

  node.gate().release();
  EXPECT_EQ(waiter.read_reply(), "sat\n");
  // The rejected tenant retries after backoff and now succeeds.
  EXPECT_EQ(rejected.request("(check-sat)"), "sat\n");
  waiter.request("(exit)");
  rejected.request("(exit)");
  node.shutdown();
  EXPECT_GE(node.gate().stats().rejected, 1u);
}

}  // namespace

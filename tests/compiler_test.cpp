#include <gtest/gtest.h>

#include "smtlib/compiler.hpp"
#include "smtlib/parser.hpp"

namespace qsmt::smtlib {
namespace {

TermPtr term(const std::string& text) {
  const auto exprs = parse_sexprs(text);
  return parse_term(exprs.at(0));
}

std::map<std::string, Sort> string_var(const std::string& name) {
  return {{name, Sort::kString}};
}

TEST(CompileAtom, EqualityWithLiteral) {
  std::string error;
  const auto c = compile_atom(term("(= x \"hi\")"), "x", std::nullopt, error);
  ASSERT_TRUE(c.has_value()) << error;
  EXPECT_EQ(std::get<strqubo::Equality>(*c).target, "hi");
}

TEST(CompileAtom, EqualityFlippedOperands) {
  std::string error;
  const auto c = compile_atom(term("(= \"hi\" x)"), "x", std::nullopt, error);
  ASSERT_TRUE(c.has_value()) << error;
  EXPECT_EQ(std::get<strqubo::Equality>(*c).target, "hi");
}

TEST(CompileAtom, ConcatDefinition) {
  std::string error;
  const auto c = compile_atom(term("(= x (str.++ \"ab\" \"cd\"))"), "x",
                              std::nullopt, error);
  ASSERT_TRUE(c.has_value()) << error;
  const auto& concat = std::get<strqubo::Concat>(*c);
  EXPECT_EQ(concat.lhs, "ab");
  EXPECT_EQ(concat.rhs, "cd");
}

TEST(CompileAtom, MultiPartConcatFoldsTail) {
  std::string error;
  const auto c = compile_atom(term("(= x (str.++ \"a\" \"b\" \"c\"))"), "x",
                              std::nullopt, error);
  ASSERT_TRUE(c.has_value()) << error;
  const auto& concat = std::get<strqubo::Concat>(*c);
  EXPECT_EQ(concat.lhs, "a");
  EXPECT_EQ(concat.rhs, "bc");
}

TEST(CompileAtom, ReplaceForms) {
  std::string error;
  const auto first = compile_atom(term("(= x (str.replace \"hello\" \"l\" \"x\"))"),
                                  "x", std::nullopt, error);
  ASSERT_TRUE(first.has_value()) << error;
  EXPECT_TRUE(std::holds_alternative<strqubo::Replace>(*first));

  const auto all = compile_atom(
      term("(= x (str.replace_all \"hello\" \"l\" \"x\"))"), "x", std::nullopt,
      error);
  ASSERT_TRUE(all.has_value()) << error;
  const auto& replace_all = std::get<strqubo::ReplaceAll>(*all);
  EXPECT_EQ(replace_all.from, 'l');
  EXPECT_EQ(replace_all.to, 'x');
}

TEST(CompileAtom, ReverseExtension) {
  std::string error;
  const auto c = compile_atom(term("(= x (str.rev \"abc\"))"), "x",
                              std::nullopt, error);
  ASSERT_TRUE(c.has_value()) << error;
  EXPECT_EQ(std::get<strqubo::Reverse>(*c).input, "abc");
}

TEST(CompileAtom, ContainsNeedsLength) {
  std::string error;
  EXPECT_FALSE(compile_atom(term("(str.contains x \"hi\")"), "x", std::nullopt,
                            error)
                   .has_value());
  EXPECT_NE(error.find("str.len"), std::string::npos);

  const auto c =
      compile_atom(term("(str.contains x \"hi\")"), "x", 6, error);
  ASSERT_TRUE(c.has_value()) << error;
  const auto& sub = std::get<strqubo::SubstringMatch>(*c);
  EXPECT_EQ(sub.length, 6u);
  EXPECT_EQ(sub.substring, "hi");
}

TEST(CompileAtom, IndexOf) {
  std::string error;
  const auto c = compile_atom(term("(= (str.indexof x \"hi\" 0) 2)"), "x", 6,
                              error);
  ASSERT_TRUE(c.has_value()) << error;
  const auto& index_of = std::get<strqubo::IndexOf>(*c);
  EXPECT_EQ(index_of.index, 2u);
  EXPECT_EQ(index_of.substring, "hi");
}

TEST(CompileAtom, PrefixAndSuffix) {
  std::string error;
  const auto prefix =
      compile_atom(term("(str.prefixof \"ab\" x)"), "x", 5, error);
  ASSERT_TRUE(prefix.has_value()) << error;
  EXPECT_EQ(std::get<strqubo::IndexOf>(*prefix).index, 0u);

  const auto suffix =
      compile_atom(term("(str.suffixof \"ab\" x)"), "x", 5, error);
  ASSERT_TRUE(suffix.has_value()) << error;
  EXPECT_EQ(std::get<strqubo::IndexOf>(*suffix).index, 3u);

  EXPECT_FALSE(
      compile_atom(term("(str.suffixof \"abcdef\" x)"), "x", 5, error)
          .has_value());
}

TEST(CompileAtom, Palindrome) {
  std::string error;
  const auto c = compile_atom(term("(qsmt.is_palindrome x)"), "x", 6, error);
  ASSERT_TRUE(c.has_value()) << error;
  EXPECT_EQ(std::get<strqubo::Palindrome>(*c).length, 6u);
}

TEST(CompileAtom, RegexMembership) {
  std::string error;
  const auto c = compile_atom(
      term("(str.in_re x (re.++ (str.to_re \"a\") "
           "(re.+ (re.union (str.to_re \"b\") (str.to_re \"c\")))))"),
      "x", 5, error);
  ASSERT_TRUE(c.has_value()) << error;
  const auto& regex = std::get<strqubo::RegexMatch>(*c);
  EXPECT_EQ(regex.pattern, "a[bc]+");
  EXPECT_EQ(regex.length, 5u);
}

TEST(CompileAtom, CharAtForm) {
  std::string error;
  const auto c =
      compile_atom(term("(= (str.at x 2) \"q\")"), "x", 5, error);
  ASSERT_TRUE(c.has_value()) << error;
  const auto& at = std::get<strqubo::CharAt>(*c);
  EXPECT_EQ(at.index, 2u);
  EXPECT_EQ(at.ch, 'q');
  EXPECT_EQ(at.length, 5u);

  // Flipped operand order.
  const auto flipped =
      compile_atom(term("(= \"q\" (str.at x 2))"), "x", 5, error);
  EXPECT_TRUE(flipped.has_value()) << error;

  // Out-of-range index.
  EXPECT_FALSE(
      compile_atom(term("(= (str.at x 9) \"q\")"), "x", 5, error).has_value());
  // Needs a length.
  EXPECT_FALSE(compile_atom(term("(= (str.at x 2) \"q\")"), "x", std::nullopt,
                            error)
                   .has_value());
}

TEST(CompileAtom, NotContainsForm) {
  std::string error;
  const auto c =
      compile_atom(term("(not (str.contains x \"ab\"))"), "x", 6, error);
  ASSERT_TRUE(c.has_value()) << error;
  const auto& nc = std::get<strqubo::NotContains>(*c);
  EXPECT_EQ(nc.substring, "ab");
  EXPECT_EQ(nc.length, 6u);
  // Other negations stay out of fragment.
  EXPECT_FALSE(
      compile_atom(term("(not (= x \"ab\"))"), "x", 6, error).has_value());
}

TEST(EvaluateGround, StrAt) {
  EXPECT_EQ(std::get<std::string>(*evaluate_ground(term("(str.at \"abc\" 1)"))),
            "b");
  EXPECT_EQ(std::get<std::string>(*evaluate_ground(term("(str.at \"abc\" 9)"))),
            "");
}

TEST(CompileAtom, UnsupportedAtomsReportErrors) {
  std::string error;
  EXPECT_FALSE(
      compile_atom(term("(str.lt x \"a\")"), "x", 5, error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(compile_atom(term("(= x y)"), "x", 5, error).has_value());
}

TEST(RegexTermToPattern, EscapesMetacharacters) {
  EXPECT_EQ(regex_term_to_pattern(term("(str.to_re \"a+b\")")), R"(a\+b)");
  EXPECT_EQ(regex_term_to_pattern(term("(str.to_re \"[x]\")")), R"(\[x\])");
}

TEST(RegexTermToPattern, StarAndOptional) {
  EXPECT_EQ(regex_term_to_pattern(term("(re.* (str.to_re \"a\"))")), "a*");
  EXPECT_EQ(regex_term_to_pattern(term("(re.opt (str.to_re \"b\"))")), "b?");
}

TEST(RegexTermToPattern, RejectsUnsupported) {
  EXPECT_THROW(regex_term_to_pattern(term("(re.range \"a\" \"z\")")),
               std::invalid_argument);
  EXPECT_THROW(regex_term_to_pattern(
                   term("(re.union (str.to_re \"ab\") (str.to_re \"c\"))")),
               std::invalid_argument);
  EXPECT_THROW(
      regex_term_to_pattern(term(
          "(re.+ (re.++ (str.to_re \"a\") (str.to_re \"b\")))")),
      std::invalid_argument);
}

TEST(EvaluateGround, StringOperations) {
  EXPECT_EQ(std::get<std::int64_t>(*evaluate_ground(term("(str.len \"abc\")"))),
            3);
  EXPECT_EQ(std::get<std::string>(*evaluate_ground(term("(str.++ \"a\" \"b\")"))),
            "ab");
  EXPECT_TRUE(std::get<bool>(
      *evaluate_ground(term("(str.contains \"hello\" \"ell\")"))));
  EXPECT_EQ(std::get<std::int64_t>(
                *evaluate_ground(term("(str.indexof \"hello\" \"l\" 0)"))),
            2);
  EXPECT_EQ(std::get<std::int64_t>(
                *evaluate_ground(term("(str.indexof \"hello\" \"z\" 0)"))),
            -1);
  EXPECT_EQ(std::get<std::string>(*evaluate_ground(
                term("(str.replace_all \"hello\" \"l\" \"x\")"))),
            "hexxo");
  EXPECT_EQ(std::get<std::string>(*evaluate_ground(term("(str.rev \"abc\")"))),
            "cba");
}

TEST(EvaluateGround, BooleanStructure) {
  EXPECT_TRUE(std::get<bool>(*evaluate_ground(term("(= \"a\" \"a\")"))));
  EXPECT_FALSE(std::get<bool>(*evaluate_ground(term("(= \"a\" \"b\")"))));
  EXPECT_TRUE(std::get<bool>(*evaluate_ground(term("(not (= 1 2))"))));
  EXPECT_TRUE(std::get<bool>(
      *evaluate_ground(term("(and (= 1 1) (or (= 1 2) (= 3 3)))"))));
}

TEST(EvaluateGround, NonGroundReturnsNullopt) {
  EXPECT_FALSE(evaluate_ground(term("x")).has_value());
  EXPECT_FALSE(evaluate_ground(term("(str.len x)")).has_value());
}

TEST(CompileAssertions, CollectsLengthAndConstraints) {
  const std::vector<TermPtr> assertions{term("(= (str.len x) 6)"),
                                        term("(str.contains x \"hi\")")};
  const CompiledQuery query = compile_assertions(assertions, string_var("x"));
  EXPECT_EQ(query.variable, "x");
  EXPECT_EQ(query.declared_length, 6u);
  ASSERT_EQ(query.constraints.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<strqubo::SubstringMatch>(
      query.constraints[0]));
  EXPECT_TRUE(query.unsupported.empty());
}

TEST(CompileAssertions, FlattensConjunctions) {
  const std::vector<TermPtr> assertions{
      term("(and (= (str.len x) 4) (and (qsmt.is_palindrome x) "
           "(str.contains x \"ab\")))")};
  const CompiledQuery query = compile_assertions(assertions, string_var("x"));
  EXPECT_EQ(query.declared_length, 4u);
  EXPECT_EQ(query.constraints.size(), 2u);
}

TEST(CompileAssertions, GroundFalseIsFalsified) {
  const std::vector<TermPtr> assertions{term("(= \"a\" \"b\")")};
  const CompiledQuery query = compile_assertions(assertions, {});
  EXPECT_FALSE(query.falsified_ground.empty());
}

TEST(CompileAssertions, GroundTrueIsDischarged) {
  const std::vector<TermPtr> assertions{term("(str.contains \"ab\" \"a\")")};
  const CompiledQuery query = compile_assertions(assertions, {});
  EXPECT_TRUE(query.falsified_ground.empty());
  EXPECT_TRUE(query.unsupported.empty());
  EXPECT_TRUE(query.constraints.empty());
}

TEST(CompileAssertions, ConflictingLengthsFalsify) {
  const std::vector<TermPtr> assertions{term("(= (str.len x) 4)"),
                                        term("(= (str.len x) 5)")};
  const CompiledQuery query = compile_assertions(assertions, string_var("x"));
  EXPECT_FALSE(query.falsified_ground.empty());
}

TEST(CompileAssertions, MultipleStringVariablesUnsupported) {
  auto declared = string_var("x");
  declared.emplace("y", Sort::kString);
  const std::vector<TermPtr> assertions{term("(= x \"a\")"),
                                        term("(= y \"b\")")};
  const CompiledQuery query = compile_assertions(assertions, declared);
  EXPECT_FALSE(query.unsupported.empty());
}

TEST(CompileAssertions, OrIsOutOfFragment) {
  const std::vector<TermPtr> assertions{
      term("(or (= x \"a\") (= x \"b\"))")};
  const CompiledQuery query = compile_assertions(assertions, string_var("x"));
  EXPECT_FALSE(query.unsupported.empty());
  EXPECT_TRUE(query.constraints.empty());
}

}  // namespace
}  // namespace qsmt::smtlib

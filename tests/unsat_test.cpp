// Unit tests for baseline::certify_unsat — the exact refutation routes the
// SMT driver consults before falling back to the annealer. Soundness is the
// whole game: `proven` must never fire for a satisfiable conjunction.
#include <gtest/gtest.h>

#include "baseline/classical.hpp"
#include "baseline/unsat.hpp"
#include "strqubo/constraint.hpp"
#include "strqubo/verify.hpp"

namespace qsmt::baseline {
namespace {

using strqubo::Constraint;

TEST(CertifyUnsat, EmptyConjunctionIsNotCertified) {
  EXPECT_FALSE(certify_unsat({}).proven);
}

TEST(CertifyUnsat, LengthConflict) {
  const UnsatCertificate cert = certify_unsat(
      {strqubo::Equality{"ab"}, strqubo::Equality{"abc"}});
  ASSERT_TRUE(cert.proven);
  EXPECT_NE(cert.reason.find("lengths"), std::string::npos);
}

TEST(CertifyUnsat, LengthConflictAcrossOperations) {
  const UnsatCertificate cert = certify_unsat(
      {strqubo::Palindrome{4}, strqubo::Reverse{"abcde"}});
  EXPECT_TRUE(cert.proven);
}

TEST(CertifyUnsat, PinnedWitnessViolatesSibling) {
  // "ab" is the unique satisfier of the equality and does not contain "z".
  const UnsatCertificate cert = certify_unsat(
      {strqubo::Equality{"ab"}, strqubo::SubstringMatch{2, "z"}});
  ASSERT_TRUE(cert.proven);
  EXPECT_NE(cert.reason.find("only string"), std::string::npos);
}

TEST(CertifyUnsat, PinnedWitnessFromReplaceAll) {
  // replaceAll("aba", a->b) = "bbb", which is not a palindrome mismatch --
  // pick a sibling it genuinely violates: charAt 0 'a'.
  const UnsatCertificate cert = certify_unsat(
      {strqubo::ReplaceAll{"aba", 'a', 'b'}, strqubo::CharAt{3, 0, 'a'}});
  EXPECT_TRUE(cert.proven);
}

TEST(CertifyUnsat, ImpossibleRegexLength) {
  const UnsatCertificate cert =
      certify_unsat({Constraint{strqubo::RegexMatch{"abc", 2}}});
  ASSERT_TRUE(cert.proven);
  EXPECT_NE(cert.reason.find("regex"), std::string::npos);
}

TEST(CertifyUnsat, MalformedRegexIsNotCertifiedHere) {
  // Builder-level validation owns malformed patterns; the certifier must
  // not convert a parse error into an unsat claim.
  EXPECT_FALSE(
      certify_unsat({Constraint{strqubo::RegexMatch{"[ab", 2}}}).proven);
}

TEST(CertifyUnsat, ExhaustiveSearchRefutesMirrorConflict) {
  // Palindrome of length 2 with both characters pinned to different values:
  // no conjunct has a unique witness, only search can refute it.
  const UnsatCertificate cert = certify_unsat({strqubo::Palindrome{2},
                                               strqubo::CharAt{2, 0, 'a'},
                                               strqubo::CharAt{2, 1, 'b'}});
  ASSERT_TRUE(cert.proven);
  EXPECT_NE(cert.reason.find("exhaustive"), std::string::npos);
}

TEST(CertifyUnsat, ExhaustiveSearchRespectsLengthCap) {
  // Same conflict stretched past kMaxExhaustiveLength: the certifier must
  // give up (unknown downstream), not claim anything.
  const std::size_t length = kMaxExhaustiveLength + 1;
  const UnsatCertificate cert =
      certify_unsat({strqubo::Palindrome{length},
                     strqubo::CharAt{length, 0, 'a'},
                     strqubo::CharAt{length, length - 1, 'b'}});
  EXPECT_FALSE(cert.proven);
}

TEST(CertifyUnsat, SatisfiableConjunctionsAreNeverCertified) {
  // Soundness spot-checks across every route's trigger shape.
  const std::vector<std::vector<Constraint>> satisfiable = {
      {strqubo::Equality{"ab"}},
      {strqubo::Equality{"ab"}, strqubo::SubstringMatch{2, "a"}},
      {strqubo::Palindrome{2}, strqubo::CharAt{2, 0, 'a'},
       strqubo::CharAt{2, 1, 'a'}},
      {Constraint{strqubo::RegexMatch{"a+b", 3}}},
      {strqubo::NotContains{2, "ab"}, strqubo::CharAt{2, 0, 'a'}},
      {strqubo::BoundedLength{2, 1, 2}, strqubo::Palindrome{2}},
  };
  for (const auto& conjunction : satisfiable) {
    const UnsatCertificate cert = certify_unsat(conjunction);
    EXPECT_FALSE(cert.proven) << cert.reason;
  }
}

TEST(CertifyUnsat, IncludesConjunctionsAreSkipped) {
  EXPECT_FALSE(certify_unsat({Constraint{strqubo::Includes{"ab", "z"}},
                              Constraint{strqubo::Equality{"ab"}}})
                   .proven);
}

TEST(CertifyUnsat, CertifiedConjunctionsTrulyHaveNoWitness) {
  // Differential check: for every certified length<=2 conjunction, brute
  // force over the full alphabet agrees no witness exists.
  const std::vector<std::vector<Constraint>> certified = {
      {strqubo::Equality{"ab"}, strqubo::Equality{"cd"}},
      {strqubo::Palindrome{2}, strqubo::CharAt{2, 0, 'a'},
       strqubo::CharAt{2, 1, 'b'}},
      {strqubo::NotContains{2, "ab"}, strqubo::IndexOf{2, "ab", 0}},
  };
  for (const auto& conjunction : certified) {
    ASSERT_TRUE(certify_unsat(conjunction).proven);
    for (int a = 0; a < 128; ++a) {
      for (int b = 0; b < 128; ++b) {
        const std::string candidate{static_cast<char>(a),
                                    static_cast<char>(b)};
        bool all = true;
        for (const auto& c : conjunction) {
          all = all && strqubo::verify_string(c, candidate);
        }
        ASSERT_FALSE(all) << "certified conjunction has witness "
                          << candidate;
      }
    }
  }
}

}  // namespace
}  // namespace qsmt::baseline

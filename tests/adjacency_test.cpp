#include <gtest/gtest.h>

#include <vector>

#include "qubo/adjacency.hpp"
#include "util/rng.hpp"

namespace qsmt::qubo {
namespace {

QuboModel random_model(std::size_t n, double density, Xoshiro256& rng) {
  QuboModel model(n);
  model.set_offset(rng.uniform() - 0.5);
  for (std::size_t i = 0; i < n; ++i) {
    model.add_linear(i, rng.uniform() * 4.0 - 2.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < density) {
        model.add_quadratic(i, j, rng.uniform() * 4.0 - 2.0);
      }
    }
  }
  return model;
}

std::vector<std::uint8_t> random_bits(std::size_t n, Xoshiro256& rng) {
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = rng.coin();
  return bits;
}

TEST(QuboAdjacency, EnergyMatchesModel) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const QuboModel model = random_model(12, 0.4, rng);
    const QuboAdjacency adjacency(model);
    for (int a = 0; a < 10; ++a) {
      const auto bits = random_bits(12, rng);
      EXPECT_NEAR(adjacency.energy(bits), model.energy(bits), 1e-9);
    }
  }
}

TEST(QuboAdjacency, FlipDeltaMatchesEnergyDifference) {
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const QuboModel model = random_model(10, 0.5, rng);
    const QuboAdjacency adjacency(model);
    auto bits = random_bits(10, rng);
    for (std::size_t i = 0; i < 10; ++i) {
      const double before = adjacency.energy(bits);
      const double delta = adjacency.flip_delta(bits, i);
      bits[i] ^= 1;
      const double after = adjacency.energy(bits);
      bits[i] ^= 1;
      EXPECT_NEAR(after - before, delta, 1e-9);
    }
  }
}

TEST(QuboAdjacency, LocalFieldSumsNeighbors) {
  QuboModel model(3);
  model.add_linear(0, 1.0);
  model.add_quadratic(0, 1, 2.0);
  model.add_quadratic(0, 2, -3.0);
  const QuboAdjacency adjacency(model);

  std::vector<std::uint8_t> bits{0, 1, 1};
  EXPECT_DOUBLE_EQ(adjacency.local_field(bits, 0), 1.0 + 2.0 - 3.0);
  bits[2] = 0;
  EXPECT_DOUBLE_EQ(adjacency.local_field(bits, 0), 3.0);
}

TEST(QuboAdjacency, NeighborsAreSortedAndComplete) {
  QuboModel model(4);
  model.add_quadratic(2, 0, 1.0);
  model.add_quadratic(0, 3, 2.0);
  model.add_quadratic(0, 1, 3.0);
  const QuboAdjacency adjacency(model);

  const auto nb = adjacency.neighbors(0);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0].index, 1u);
  EXPECT_EQ(nb[1].index, 2u);
  EXPECT_EQ(nb[2].index, 3u);
  EXPECT_DOUBLE_EQ(nb[0].coefficient, 3.0);
  EXPECT_DOUBLE_EQ(nb[1].coefficient, 1.0);
  EXPECT_DOUBLE_EQ(nb[2].coefficient, 2.0);
}

TEST(QuboAdjacency, ZeroCoefficientEdgesAreDropped) {
  QuboModel model(3);
  model.add_quadratic(0, 1, 1.0);
  model.add_quadratic(0, 1, -1.0);
  const QuboAdjacency adjacency(model);
  EXPECT_EQ(adjacency.neighbors(0).size(), 0u);
  EXPECT_EQ(adjacency.neighbors(1).size(), 0u);
}

TEST(QuboAdjacency, SnapshotIgnoresLaterModelEdits) {
  QuboModel model(2);
  model.add_linear(0, 1.0);
  const QuboAdjacency adjacency(model);
  model.add_linear(0, 100.0);
  EXPECT_DOUBLE_EQ(adjacency.linear(0), 1.0);
}

TEST(QuboAdjacency, EnergySizeMismatchThrows) {
  QuboModel model(3);
  const QuboAdjacency adjacency(model);
  const std::vector<std::uint8_t> bits{1, 0};
  EXPECT_THROW(adjacency.energy(bits), std::invalid_argument);
}

TEST(QuboAdjacency, PreservesOffset) {
  QuboModel model(1);
  model.set_offset(4.5);
  const QuboAdjacency adjacency(model);
  EXPECT_DOUBLE_EQ(adjacency.offset(), 4.5);
  const std::vector<std::uint8_t> bits{0};
  EXPECT_DOUBLE_EQ(adjacency.energy(bits), 4.5);
}

}  // namespace
}  // namespace qsmt::qubo

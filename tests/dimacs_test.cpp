#include <gtest/gtest.h>

#include "sat/dimacs.hpp"
#include "util/rng.hpp"

namespace qsmt::sat {
namespace {

constexpr const char* kSimpleSat = R"(c a satisfiable instance
p cnf 3 3
1 -2 0
2 3 0
-1 0
)";

constexpr const char* kSimpleUnsat = R"(p cnf 1 2
1 0
-1 0
)";

TEST(ParseDimacs, ReadsHeaderAndClauses) {
  const CnfInstance instance = parse_dimacs_string(kSimpleSat);
  EXPECT_EQ(instance.num_variables, 3u);
  ASSERT_EQ(instance.clauses.size(), 3u);
  EXPECT_EQ(instance.clauses[0], (std::vector<Literal>{1, -2}));
  EXPECT_EQ(instance.clauses[2], (std::vector<Literal>{-1}));
}

TEST(ParseDimacs, CommentsAndBlankLinesIgnored) {
  const CnfInstance instance = parse_dimacs_string(
      "c comment\n\np cnf 2 1\nc mid comment\n1 2 0\n");
  EXPECT_EQ(instance.clauses.size(), 1u);
}

TEST(ParseDimacs, MultiLineClause) {
  const CnfInstance instance =
      parse_dimacs_string("p cnf 3 1\n1 2\n3 0\n");
  ASSERT_EQ(instance.clauses.size(), 1u);
  EXPECT_EQ(instance.clauses[0].size(), 3u);
}

TEST(ParseDimacs, Errors) {
  EXPECT_THROW(parse_dimacs_string(""), std::invalid_argument);
  EXPECT_THROW(parse_dimacs_string("1 2 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_dimacs_string("p cnf 2 1\n1 5 0\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_dimacs_string("p cnf 2 1\n1 2\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_dimacs_string("p cnf 2 2\n1 0\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_dimacs_string("p dnf 2 1\n1 0\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_dimacs_string("p cnf 1 1\np cnf 1 1\n1 0\n"),
               std::invalid_argument);
}

TEST(ToDimacs, RoundTrips) {
  const CnfInstance original = parse_dimacs_string(kSimpleSat);
  const CnfInstance round_tripped =
      parse_dimacs_string(to_dimacs(original));
  EXPECT_EQ(round_tripped.num_variables, original.num_variables);
  EXPECT_EQ(round_tripped.clauses, original.clauses);
}

TEST(SolveDimacs, SatInstanceYieldsConsistentModel) {
  const DimacsResult result = solve_dimacs(kSimpleSat);
  ASSERT_EQ(result.status, SolveStatus::kSat);
  ASSERT_EQ(result.model.size(), 3u);
  // Model must satisfy every clause.
  const CnfInstance instance = parse_dimacs_string(kSimpleSat);
  for (const auto& clause : instance.clauses) {
    bool satisfied = false;
    for (Literal lit : clause) {
      const auto v = static_cast<std::size_t>(lit > 0 ? lit : -lit);
      if ((lit > 0) == (result.model[v - 1] > 0)) satisfied = true;
    }
    EXPECT_TRUE(satisfied);
  }
}

TEST(SolveDimacs, UnsatInstance) {
  EXPECT_EQ(solve_dimacs(kSimpleUnsat).status, SolveStatus::kUnsat);
}

TEST(LoadInto, RequiresFreshSolver) {
  CdclSolver solver;
  solver.add_variable();
  const CnfInstance instance = parse_dimacs_string(kSimpleUnsat);
  EXPECT_THROW(load_into(instance, solver), std::invalid_argument);
}

TEST(SolveDimacs, RandomInstancesRoundTripThroughText) {
  // Generate random 3-SAT, solve directly and via text round trip: status
  // must agree.
  Xoshiro256 rng(10);
  for (int trial = 0; trial < 10; ++trial) {
    CnfInstance instance;
    instance.num_variables = 8;
    for (int c = 0; c < 30; ++c) {
      std::vector<Literal> clause;
      for (int k = 0; k < 3; ++k) {
        const auto v = static_cast<Literal>(1 + rng.below(8));
        clause.push_back(rng.coin() ? v : -v);
      }
      instance.clauses.push_back(std::move(clause));
    }
    CdclSolver direct;
    load_into(instance, direct);
    const SolveStatus expected = direct.solve();
    EXPECT_EQ(solve_dimacs(to_dimacs(instance)).status, expected)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace qsmt::sat

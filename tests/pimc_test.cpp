#include <gtest/gtest.h>

#include "anneal/exact.hpp"
#include "anneal/pimc.hpp"
#include "util/rng.hpp"

namespace qsmt::anneal {
namespace {

qubo::QuboModel random_model(std::size_t n, Xoshiro256& rng) {
  qubo::QuboModel model(n);
  for (std::size_t i = 0; i < n; ++i)
    model.add_linear(i, rng.uniform() * 2.0 - 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < 0.4)
        model.add_quadratic(i, j, rng.uniform() * 2.0 - 1.0);
    }
  }
  return model;
}

PathIntegralParams fast_params(std::uint64_t seed) {
  PathIntegralParams p;
  p.num_reads = 16;
  p.num_sweeps = 128;
  p.num_slices = 8;
  p.seed = seed;
  return p;
}

TEST(TrotterCoupling, IsPositive) {
  EXPECT_GT(trotter_coupling(1.0, 16, 0.05), 0.0);
  EXPECT_GT(trotter_coupling(0.01, 16, 0.05), 0.0);
}

TEST(TrotterCoupling, GrowsWithoutBoundAsFieldVanishes) {
  // Γ -> 0 locks the replicas together (classical limit); the growth is
  // logarithmic in 1/Γ.
  const double at_01 = trotter_coupling(0.1, 16, 0.05);
  const double at_1em6 = trotter_coupling(1e-6, 16, 0.05);
  const double at_1em12 = trotter_coupling(1e-12, 16, 0.05);
  EXPECT_GT(at_1em6, at_01);
  EXPECT_GT(at_1em12, at_1em6);
  // Doubling the exponent roughly doubles J⊥ in the deep-lock regime.
  EXPECT_NEAR(at_1em12 / at_1em6, 2.0, 0.1);
}

TEST(TrotterCoupling, ShrinksAsFieldGrows) {
  EXPECT_LT(trotter_coupling(5.0, 16, 0.05), trotter_coupling(0.5, 16, 0.05));
}

TEST(TrotterCoupling, ValidatesArguments) {
  EXPECT_THROW(trotter_coupling(0.0, 16, 0.05), std::invalid_argument);
  EXPECT_THROW(trotter_coupling(1.0, 1, 0.05), std::invalid_argument);
  EXPECT_THROW(trotter_coupling(1.0, 16, 0.0), std::invalid_argument);
}

TEST(PathIntegralAnnealer, RejectsInvalidParams) {
  PathIntegralParams p = fast_params(0);
  p.num_slices = 1;
  EXPECT_THROW(PathIntegralAnnealer{p}, std::invalid_argument);
  p = fast_params(0);
  p.gamma_cold = p.gamma_hot + 1.0;
  EXPECT_THROW(PathIntegralAnnealer{p}, std::invalid_argument);
  p = fast_params(0);
  p.temperature = 0.0;
  EXPECT_THROW(PathIntegralAnnealer{p}, std::invalid_argument);
  p = fast_params(0);
  p.num_reads = 0;
  EXPECT_THROW(PathIntegralAnnealer{p}, std::invalid_argument);
}

TEST(PathIntegralAnnealer, SolvesDiagonalModel) {
  qubo::QuboModel model(14);
  for (std::size_t i = 0; i < 14; ++i) {
    model.add_linear(i, i % 2 == 0 ? -1.0 : 1.0);
  }
  const PathIntegralAnnealer annealer(fast_params(1));
  const SampleSet samples = annealer.sample(model);
  EXPECT_DOUBLE_EQ(samples.lowest_energy(), -7.0);
}

class PimcVsExact : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PimcVsExact, FindsGroundOfSmallRandomModels) {
  Xoshiro256 rng(GetParam());
  const auto model = random_model(10, rng);
  const double ground = ExactSolver().ground_energy(model);
  const PathIntegralAnnealer annealer(fast_params(GetParam() + 40));
  EXPECT_NEAR(annealer.sample(model).lowest_energy(), ground, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PimcVsExact, ::testing::Values(1u, 2u, 3u, 4u));

TEST(PathIntegralAnnealer, DeterministicForFixedSeed) {
  Xoshiro256 rng(50);
  const auto model = random_model(8, rng);
  const PathIntegralAnnealer annealer(fast_params(12));
  const SampleSet a = annealer.sample(model);
  const SampleSet b = annealer.sample(model);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].bits, b[i].bits);
}

TEST(PathIntegralAnnealer, SolvesEqualityGadgetChain) {
  // Mirrored-bit chain, the palindrome formulation's shape: ground energy 0.
  qubo::QuboModel model(12);
  for (std::size_t i = 0; i < 6; ++i) {
    model.add_linear(i, 1.0);
    model.add_linear(11 - i, 1.0);
    model.add_quadratic(i, 11 - i, -2.0);
  }
  const PathIntegralAnnealer annealer(fast_params(3));
  EXPECT_NEAR(annealer.sample(model).lowest_energy(), 0.0, 1e-9);
}

TEST(PathIntegralAnnealer, NameIsStable) {
  EXPECT_EQ(PathIntegralAnnealer(fast_params(0)).name(),
            "path-integral-quantum");
}

}  // namespace
}  // namespace qsmt::anneal

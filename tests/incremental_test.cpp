// Incremental-solving differential layer (the proof of the incremental
// subsystem): seeded randomized push/pop/assert/check-sat-assuming chains
// replayed through one persistent incremental SmtDriver and, per query,
// through a fresh driver given the same assertion stack. The two must agree
// on every verdict, and every sat witness must classically verify against
// every live conjunct — so witness reuse, warm starts, fragment caching and
// retained lemmas can only make answers faster, never different.
//
// Also unit-tests the substrate itself: FragmentCache (hit/miss/LRU),
// SolveContext (depth-keyed witness + lemma invalidation), and the
// solve_conjunction_incremental fast paths (reuse / warm / cold).

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "anneal/exact.hpp"
#include "smtlib/compiler.hpp"
#include "smtlib/driver.hpp"
#include "smtlib/incremental.hpp"
#include "smtlib/parser.hpp"
#include "strenc/ascii7.hpp"
#include "strqubo/constraint.hpp"
#include "strqubo/verify.hpp"
#include "util/rng.hpp"

namespace qsmt::smtlib {
namespace {

// ---------------------------------------------------------------------------
// Substrate unit tests.
// ---------------------------------------------------------------------------

TEST(FragmentKey, SeparatesConstraintStructureAndBuildOptions) {
  const strqubo::Constraint ab = strqubo::Equality{"ab"};
  const strqubo::Constraint ac = strqubo::Equality{"ac"};
  strqubo::BuildOptions defaults;
  strqubo::BuildOptions strong;
  strong.strength = 2.0;

  EXPECT_EQ(fragment_key(ab, defaults),
            fragment_key(strqubo::Equality{"ab"}, strqubo::BuildOptions{}));
  EXPECT_NE(fragment_key(ab, defaults), fragment_key(ac, defaults));
  // Same structure under different penalties is a different QUBO.
  EXPECT_NE(fragment_key(ab, defaults), fragment_key(ab, strong));
}

TEST(FragmentCache, ReturnsSharedBlockOnHit) {
  FragmentCache cache(8);
  const strqubo::BuildOptions options;
  const auto first = cache.get_or_build(strqubo::Equality{"ab"}, options);
  const auto again = cache.get_or_build(strqubo::Equality{"ab"}, options);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), again.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  cache.get_or_build(strqubo::Equality{"cd"}, options);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(FragmentCache, EvictsLeastRecentlyUsedAtCapacity) {
  FragmentCache cache(2);
  const strqubo::BuildOptions options;
  const auto a = cache.get_or_build(strqubo::Equality{"aa"}, options);
  cache.get_or_build(strqubo::Equality{"bb"}, options);
  // Touch "aa" so "bb" becomes the eviction victim.
  cache.get_or_build(strqubo::Equality{"aa"}, options);
  cache.get_or_build(strqubo::Equality{"cc"}, options);
  EXPECT_EQ(cache.size(), 2u);

  // "aa" survived: same immutable block. "bb" was rebuilt: a fresh block.
  const auto a_again = cache.get_or_build(strqubo::Equality{"aa"}, options);
  EXPECT_EQ(a.get(), a_again.get());
  const auto misses_before = cache.stats().misses;
  cache.get_or_build(strqubo::Equality{"bb"}, options);
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(SolveContext, PopDropsWitnessesAndLemmasOfRemovedFrames) {
  SolveContext context;
  context.note_witness("aa");
  context.push(1);
  context.note_witness("bb");
  context.clause_memory().remember(1, {{"(str.prefixof \"a\" x)", true}});
  context.push(2);
  context.note_witness("cc");
  ASSERT_NE(context.last_witness(), nullptr);
  EXPECT_EQ(*context.last_witness(), "cc");
  EXPECT_EQ(context.depth(), 3u);

  context.pop(2);
  EXPECT_EQ(context.depth(), 1u);
  ASSERT_NE(context.last_witness(), nullptr);
  EXPECT_EQ(*context.last_witness(), "bb");
  EXPECT_EQ(context.clause_memory().size(), 1u);

  context.pop(1);
  ASSERT_NE(context.last_witness(), nullptr);
  EXPECT_EQ(*context.last_witness(), "aa");
  EXPECT_EQ(context.clause_memory().size(), 0u);

  // A fresh witness at the surviving depth supersedes the old one.
  context.note_witness("dd");
  EXPECT_EQ(*context.last_witness(), "dd");

  context.clear();
  EXPECT_EQ(context.last_witness(), nullptr);
  EXPECT_EQ(context.depth(), 0u);
}

TEST(ClauseMemory, DropDeeperThanKeepsShallowLemmas) {
  ClauseMemory memory;
  memory.remember(0, {{"a0", true}});
  memory.remember(2, {{"a2", false}});
  memory.remember(3, {{"a3", true}});
  memory.drop_deeper_than(2);
  ASSERT_EQ(memory.size(), 2u);
  EXPECT_EQ(memory.lemmas()[0].depth, 0u);
  EXPECT_EQ(memory.lemmas()[1].depth, 2u);
}

TEST(SolveConjunctionIncremental, ReusesWarmStartsAndFallsBackCold) {
  const anneal::ExactSolver exact;
  SolveContext context;
  const strqubo::BuildOptions options;

  // Cold first solve.
  std::vector<strqubo::Constraint> constraints{strqubo::Equality{"ab"}};
  const auto first = solve_conjunction_incremental(constraints, exact,
                                                   options, context);
  ASSERT_TRUE(first.solved);
  EXPECT_EQ(first.value, "ab");
  EXPECT_EQ(context.stats().cold_starts, 1u);
  EXPECT_EQ(context.stats().witness_reuses, 0u);

  // Identical re-solve: the remembered witness answers outright.
  const auto second = solve_conjunction_incremental(constraints, exact,
                                                    options, context);
  ASSERT_TRUE(second.solved);
  EXPECT_EQ(second.value, "ab");
  EXPECT_EQ(context.stats().witness_reuses, 1u);
  EXPECT_EQ(context.stats().cold_starts, 1u);

  // Mutation the old witness still satisfies: reuse again, no sampling.
  constraints = {strqubo::SubstringMatch{2, "b"}};
  const auto third = solve_conjunction_incremental(constraints, exact,
                                                   options, context);
  ASSERT_TRUE(third.solved);
  EXPECT_EQ(context.stats().witness_reuses, 2u);

  // Mutation that refutes the witness: a warm refinement pass runs, and
  // either it or the cold fallback must land on the only model.
  constraints = {strqubo::Equality{"cd"}};
  const auto fourth = solve_conjunction_incremental(constraints, exact,
                                                    options, context);
  ASSERT_TRUE(fourth.solved);
  EXPECT_EQ(fourth.value, "cd");
  EXPECT_EQ(context.stats().warm_starts, 1u);
  EXPECT_EQ(context.stats().warm_hits + (context.stats().cold_starts - 1), 1u);
}

TEST(IncrementalDriver, MutationRebuildsOnlyTheChangedFragment) {
  const anneal::ExactSolver exact;
  SmtDriver driver(exact);
  driver.run_script(R"(
    (declare-const x String)
    (assert (= (str.len x) 2))
    (push 1)
    (assert (str.prefixof "a" x))
    (assert (str.suffixof "b" x))
    (check-sat)
  )");
  ASSERT_EQ(driver.history().back().status, CheckSatStatus::kSat);
  EXPECT_EQ(driver.history().back().model_value, "ab");
  const auto before = driver.solve_context().fragments().stats();
  EXPECT_EQ(before.misses, 2u);

  // One mutated conjunct: the prefix block is re-linked from cache, only
  // the new suffix block is built.
  driver.run_script(R"(
    (pop 1)
    (push 1)
    (assert (str.prefixof "a" x))
    (assert (str.suffixof "c" x))
    (check-sat)
  )");
  ASSERT_EQ(driver.history().back().status, CheckSatStatus::kSat);
  EXPECT_EQ(driver.history().back().model_value, "ac");
  const auto after = driver.solve_context().fragments().stats();
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.hits, before.hits + 1);
}

TEST(IncrementalDriver, UnchangedResolveReusesTheWitness) {
  const anneal::ExactSolver exact;
  SmtDriver driver(exact);
  driver.run_script(R"(
    (declare-const x String)
    (assert (= (str.len x) 2))
    (assert (str.prefixof "a" x))
    (check-sat)
  )");
  const auto fragments = driver.solve_context().fragments().stats();
  driver.run_script("(check-sat)");
  ASSERT_EQ(driver.history().back().status, CheckSatStatus::kSat);
  EXPECT_GE(driver.solve_context().stats().witness_reuses, 1u);
  // The fast path never touched the fragment cache.
  EXPECT_EQ(driver.solve_context().fragments().stats().hits, fragments.hits);
  EXPECT_EQ(driver.solve_context().fragments().stats().misses,
            fragments.misses);
}

TEST(IncrementalDriver, AssumptionsDoNotOutliveTheirCheck) {
  const anneal::ExactSolver exact;
  SmtDriver driver(exact);
  const std::string out = driver.run_script(R"(
    (declare-const x String)
    (assert (= (str.len x) 2))
    (assert (str.prefixof "a" x))
    (check-sat-assuming ((str.suffixof "b" x)))
    (check-sat-assuming ((str.suffixof "c" x)))
    (check-sat-assuming ((= x "cc")))
    (check-sat)
  )");
  EXPECT_EQ(out, "sat\nsat\nunsat\nsat\n");
  ASSERT_EQ(driver.history().size(), 4u);
  EXPECT_EQ(driver.history()[0].model_value, "ab");
  EXPECT_EQ(driver.history()[1].model_value, "ac");
  // The plain check still sees only the asserted prefix.
  EXPECT_EQ(driver.history()[3].status, CheckSatStatus::kSat);
  EXPECT_EQ(driver.history()[3].model_value.front(), 'a');
}

// ---------------------------------------------------------------------------
// Differential chains: persistent incremental driver vs fresh-driver oracle.
// ---------------------------------------------------------------------------

// The eleven fuzzed op families. Each chain is biased toward one family and
// mixes in atoms from the aux-free families so multi-conjunct merges stay
// admissible (all conjuncts must agree on variable count).
enum Family : int {
  kEquality = 0,
  kConcat,
  kReplace,
  kReplaceAll,
  kReverse,
  kPrefixOf,
  kSuffixOf,
  kContains,
  kPalindrome,
  kCharAt,
  kIndexOf,
  kNumFamilies,
};

const char* family_name(int family) {
  static const char* names[] = {
      "equality",   "concat",   "replace",  "replace-all",
      "reverse",    "prefixof", "suffixof", "contains",
      "palindrome", "char-at",  "index-of"};
  return names[family];
}

std::string random_word(Xoshiro256& rng, std::size_t length) {
  std::string word;
  word.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    word.push_back(static_cast<char>('a' + rng.below(3)));
  }
  return word;
}

std::string quoted(const std::string& text) { return "\"" + text + "\""; }

/// Renders one random atom of `family` over variable x of length `length`.
std::string make_atom(int family, std::size_t length, Xoshiro256& rng) {
  switch (family) {
    case kEquality:
      return "(= x " + quoted(random_word(rng, length)) + ")";
    case kConcat: {
      const std::size_t split = 1 + rng.below(length - 1);
      return "(= x (str.++ " + quoted(random_word(rng, split)) + " " +
             quoted(random_word(rng, length - split)) + "))";
    }
    case kReplace: {
      const std::string base = random_word(rng, length);
      const char from = static_cast<char>('a' + rng.below(3));
      const char to = static_cast<char>('a' + rng.below(3));
      return "(= x (str.replace " + quoted(base) + " " +
             quoted(std::string(1, from)) + " " + quoted(std::string(1, to)) +
             "))";
    }
    case kReplaceAll: {
      const std::string base = random_word(rng, length);
      const char from = static_cast<char>('a' + rng.below(3));
      const char to = static_cast<char>('a' + rng.below(3));
      return "(= x (str.replace_all " + quoted(base) + " " +
             quoted(std::string(1, from)) + " " + quoted(std::string(1, to)) +
             "))";
    }
    case kReverse:
      return "(= x (str.rev " + quoted(random_word(rng, length)) + "))";
    case kPrefixOf:
      return "(str.prefixof " +
             quoted(random_word(rng, 1 + rng.below(length - 1))) + " x)";
    case kSuffixOf:
      return "(str.suffixof " +
             quoted(random_word(rng, 1 + rng.below(length - 1))) + " x)";
    case kContains:
      return "(str.contains x " + quoted(random_word(rng, 1)) + ")";
    case kPalindrome:
      return "(qsmt.is_palindrome x)";
    case kCharAt:
      return "(= (str.at x " + std::to_string(rng.below(length)) + ") " +
             quoted(random_word(rng, 1)) + ")";
    case kIndexOf:
    default:
      return "(= (str.indexof x " + quoted(random_word(rng, 1)) + " 0) " +
             std::to_string(rng.below(length)) + ")";
  }
}

/// Compiles one atom's text the same way the driver will; nullopt when the
/// rendered atom is outside the fragment.
std::optional<strqubo::Constraint> compile_atom_text(const std::string& atom,
                                                     std::size_t length) {
  const auto commands = parse_script("(assert " + atom + ")");
  const auto& assertion = std::get<AssertCmd>(commands.front());
  std::string error;
  return compile_atom(assertion.term, "x", length, error);
}

/// One randomized chain. Drives a persistent incremental driver op by op;
/// every check additionally replays the *live* assertion stack (no prior
/// check commands) through a fresh driver and compares verdicts, then
/// classically verifies any sat witness against every live conjunct.
class DifferentialChain {
 public:
  DifferentialChain(int family, std::uint64_t seed)
      : family_(family),
        rng_(seed),
        // Mostly length 2 (the exact oracle enumerates 2^vars assignments),
        // with an occasional length-3 chain for wider coverage.
        length_(rng_.below(5) == 0 ? 3 : 2),
        exact_(),
        driver_(exact_) {}

  void run() {
    const std::string prelude = "(set-logic QF_S)\n(declare-const x String)\n";
    const std::string base =
        "(assert (= (str.len x) " + std::to_string(length_) + "))";
    feed(prelude + base);
    state_lines_.push_back(prelude + base);
    frames_.push_back({base_atom()});

    const std::size_t ops = 8 + rng_.below(5);
    for (std::size_t i = 0; i < ops; ++i) step();
    check("(check-sat)");
  }

 private:
  std::string base_atom() const {
    return "(= (str.len x) " + std::to_string(length_) + ")";
  }

  std::string next_atom() {
    for (int tries = 0; tries < 16; ++tries) {
      int family = family_;
      if (rng_.below(5) >= 3) {
        // Mix in another family for cross-constraint coverage.
        static const int kMixable[] = {kEquality, kPrefixOf, kSuffixOf,
                                       kContains, kCharAt,   kIndexOf};
        family = kMixable[rng_.below(6)];
      }
      const std::string atom = make_atom(family, length_, rng_);
      const auto constraint = compile_atom_text(atom, length_);
      if (!constraint.has_value()) continue;
      // Conjuncts must agree on variable count to merge, and the block must
      // fit the exact oracle's 30-variable cap; all eleven families build
      // pure 7L-variable blocks, so demand exactly that.
      if (strqubo::constraint_num_variables(*constraint) !=
          strenc::num_variables(length_)) {
        continue;
      }
      last_atom_ = atom;
      return atom;
    }
    last_atom_ = "(= x " + quoted(random_word(rng_, length_)) + ")";
    return last_atom_;
  }

  void step() {
    const std::uint64_t roll = rng_.below(100);
    if (roll < 35) {
      assert_atom(next_atom());
    } else if (roll < 50) {
      push();
    } else if (roll < 60) {
      if (depth() > 0) {
        pop();
      } else {
        push();
      }
    } else if (roll < 75) {
      check("(check-sat)");
    } else if (roll < 85) {
      std::string line = "(check-sat-assuming (" + next_atom();
      std::vector<std::string> assumed{last_atom_};
      if (rng_.coin()) {
        line += " " + next_atom();
        assumed.push_back(last_atom_);
      }
      line += "))";
      check(line, assumed);
    } else {
      // Mutate: swap the innermost frame for a one-constraint variant —
      // the fragment-cache hot path.
      if (depth() == 0) push();
      pop();
      push();
      assert_atom(next_atom());
    }
  }

  std::size_t depth() const { return frames_.size() - 1; }

  void feed(const std::string& text) { driver_.run_script(text); }

  void assert_atom(const std::string& atom) {
    const std::string line = "(assert " + atom + ")";
    feed(line);
    state_lines_.push_back(line);
    frames_.back().push_back(atom);
  }

  void push() {
    feed("(push 1)");
    state_lines_.push_back("(push 1)");
    frames_.emplace_back();
  }

  void pop() {
    feed("(pop 1)");
    state_lines_.push_back("(pop 1)");
    frames_.pop_back();
  }

  void check(const std::string& line,
             const std::vector<std::string>& assumed = {}) {
    feed(line);
    ASSERT_FALSE(driver_.history().empty());
    const CheckSatRecord incremental = driver_.history().back();

    // Oracle: a fresh driver over the live assertion stack only (earlier
    // check commands do not change the stack), so it solves exactly once.
    SmtDriver oracle(exact_);
    std::ostringstream replay;
    for (const auto& state_line : state_lines_) replay << state_line << "\n";
    replay << line << "\n";
    oracle.run_script(replay.str());
    ASSERT_FALSE(oracle.history().empty());
    const CheckSatRecord fresh = oracle.history().back();

    SCOPED_TRACE("family=" + std::string(family_name(family_)) +
                 " check #" + std::to_string(++checks_) + "\n" + replay.str());
    EXPECT_EQ(status_name(incremental.status), status_name(fresh.status));
    if (incremental.status == CheckSatStatus::kSat) {
      verify_witness(incremental.model_value, assumed);
    }
    if (fresh.status == CheckSatStatus::kSat) {
      verify_witness(fresh.model_value, assumed);
    }
  }

  /// Classically verifies a sat witness against every live conjunct plus
  /// the current check's assumptions.
  void verify_witness(const std::string& model,
                      const std::vector<std::string>& assumed) {
    std::ostringstream script;
    for (const auto& frame : frames_) {
      for (const auto& atom : frame) script << "(assert " << atom << ")\n";
    }
    for (const auto& atom : assumed) script << "(assert " << atom << ")\n";
    std::vector<TermPtr> terms;
    for (const auto& command : parse_script(script.str())) {
      terms.push_back(std::get<AssertCmd>(command).term);
    }
    const std::map<std::string, Sort> declared{{"x", Sort::kString}};
    const CompiledQuery query = compile_assertions(terms, declared);
    ASSERT_TRUE(query.falsified_ground.empty());
    ASSERT_TRUE(query.unsupported.empty());
    if (query.constraints.empty()) return;  // Length-only stack.
    EXPECT_EQ(model.size(), length_);
    for (const auto& constraint : query.constraints) {
      EXPECT_TRUE(strqubo::verify_string(constraint, model))
          << "witness '" << model << "' fails "
          << strqubo::describe(constraint);
    }
  }

  int family_;
  Xoshiro256 rng_;
  std::size_t length_;
  std::size_t checks_ = 0;
  const anneal::ExactSolver exact_;
  SmtDriver driver_;
  std::vector<std::string> state_lines_;
  /// Live atoms per push/pop frame (frame 0 = base scope).
  std::vector<std::vector<std::string>> frames_;
  /// next_atom() records its result here so check-sat-assuming can verify
  /// against the exact assumption it emitted.
  std::string last_atom_;

 public:
  SmtDriver& driver() { return driver_; }
};

class IncrementalDifferential : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalDifferential, ChainsAgreeWithFreshDriverOracle) {
  const int family = GetParam();
  constexpr std::size_t kChainsPerFamily = 20;
  FragmentCache::Stats fragments;
  IncrementalStats incremental;
  for (std::size_t chain = 0; chain < kChainsPerFamily; ++chain) {
    DifferentialChain harness(
        family, mix_seed(0x14C0DEULL, family * 1000 + chain));
    harness.run();
    if (::testing::Test::HasFatalFailure()) return;
    const auto frag = harness.driver().solve_context().fragments().stats();
    fragments.hits += frag.hits;
    fragments.misses += frag.misses;
    const auto& stats = harness.driver().solve_context().stats();
    incremental.witness_reuses += stats.witness_reuses;
    incremental.warm_starts += stats.warm_starts;
    incremental.cold_starts += stats.cold_starts;
  }
  // Across 20 chains the incremental machinery must actually have engaged:
  // some solves reached the fragment cache, and at least one went through
  // witness reuse or a sampler. (Exact hit/miss deltas are pinned by the
  // deterministic IncrementalDriver tests above; chains whose re-checks all
  // land on the witness fast path legitimately skip the cache.)
  EXPECT_GT(fragments.hits + fragments.misses, 0u);
  EXPECT_GT(incremental.witness_reuses + incremental.warm_starts +
                incremental.cold_starts,
            0u);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, IncrementalDifferential,
                         ::testing::Range(0, static_cast<int>(kNumFamilies)),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string name = family_name(info.param);
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace qsmt::smtlib

#include <gtest/gtest.h>

#include "anneal/schedule.hpp"

namespace qsmt::anneal {
namespace {

TEST(MakeSchedule, LinearHitsEndpoints) {
  const auto points = make_schedule(0.0, 10.0, 5, Interpolation::kLinear);
  ASSERT_EQ(points.size(), 5u);
  EXPECT_DOUBLE_EQ(points.front(), 0.0);
  EXPECT_DOUBLE_EQ(points.back(), 10.0);
  EXPECT_DOUBLE_EQ(points[2], 5.0);
}

TEST(MakeSchedule, GeometricHitsEndpoints) {
  const auto points = make_schedule(1.0, 16.0, 5, Interpolation::kGeometric);
  ASSERT_EQ(points.size(), 5u);
  EXPECT_DOUBLE_EQ(points.front(), 1.0);
  EXPECT_DOUBLE_EQ(points.back(), 16.0);
  EXPECT_NEAR(points[1], 2.0, 1e-9);
  EXPECT_NEAR(points[2], 4.0, 1e-9);
}

TEST(MakeSchedule, SinglePointIsFirstValue) {
  const auto points = make_schedule(3.0, 99.0, 1, Interpolation::kLinear);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0], 3.0);
}

TEST(MakeSchedule, MonotonicWhenEndpointsOrdered) {
  for (auto interpolation :
       {Interpolation::kLinear, Interpolation::kGeometric}) {
    const auto points = make_schedule(0.5, 8.0, 20, interpolation);
    for (std::size_t i = 1; i < points.size(); ++i) {
      EXPECT_GE(points[i], points[i - 1]);
    }
  }
}

TEST(MakeSchedule, DecreasingSchedulesWork) {
  const auto points = make_schedule(8.0, 0.5, 10, Interpolation::kGeometric);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i], points[i - 1]);
  }
  EXPECT_DOUBLE_EQ(points.back(), 0.5);
}

TEST(MakeSchedule, ZeroPointsThrows) {
  EXPECT_THROW(make_schedule(0.0, 1.0, 0, Interpolation::kLinear),
               std::invalid_argument);
}

TEST(MakeSchedule, GeometricRejectsNonPositiveEndpoints) {
  EXPECT_THROW(make_schedule(0.0, 1.0, 3, Interpolation::kGeometric),
               std::invalid_argument);
  EXPECT_THROW(make_schedule(1.0, -1.0, 3, Interpolation::kGeometric),
               std::invalid_argument);
}

TEST(DefaultBetaRange, HotBelowCold) {
  qubo::QuboModel model(3);
  model.add_linear(0, -1.0);
  model.add_linear(1, 1.0);
  model.add_quadratic(0, 1, 0.5);
  const BetaRange range = default_beta_range(model);
  EXPECT_GT(range.hot, 0.0);
  EXPECT_GT(range.cold, range.hot);
}

TEST(DefaultBetaRange, FlatModelStillUsable) {
  qubo::QuboModel model(4);
  const BetaRange range = default_beta_range(model);
  EXPECT_GT(range.hot, 0.0);
  EXPECT_GE(range.cold, range.hot);
}

TEST(DefaultBetaRange, ScalesInverselyWithCoefficients) {
  qubo::QuboModel small(2);
  small.add_linear(0, -1.0);
  small.add_linear(1, 1.0);
  qubo::QuboModel large(2);
  large.add_linear(0, -100.0);
  large.add_linear(1, 100.0);
  EXPECT_GT(default_beta_range(small).hot, default_beta_range(large).hot);
}

}  // namespace
}  // namespace qsmt::anneal

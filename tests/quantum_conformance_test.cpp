// Conformance proof for the quantum-path overhaul: the incremental-field
// PIMC kernel and the cached-embedding sampler still find exactly the ground
// states the pre-overhaul code found. The old kernel is kept verbatim as
// anneal::detail::pimc_sample_reference, so the parity check is against the
// actual shipped predecessor, not a reimplementation.
#include <gtest/gtest.h>

#include "anneal/exact.hpp"
#include "anneal/pimc.hpp"
#include "graph/chimera.hpp"
#include "graph/embedded_sampler.hpp"
#include "strqubo/builders.hpp"
#include "util/rng.hpp"

namespace qsmt {
namespace {

qubo::QuboModel random_model(std::size_t n, Xoshiro256& rng) {
  qubo::QuboModel model(n);
  for (std::size_t i = 0; i < n; ++i)
    model.add_linear(i, rng.uniform() * 2.0 - 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < 0.4)
        model.add_quadratic(i, j, rng.uniform() * 2.0 - 1.0);
    }
  }
  return model;
}

anneal::PathIntegralParams conformance_params(std::uint64_t seed) {
  anneal::PathIntegralParams p;
  p.num_reads = 16;
  p.num_sweeps = 128;
  p.num_slices = 8;
  p.seed = seed;
  return p;
}

// Both kernels, the exact solver, and each other: the new kernel's best
// energy equals the reference kernel's best energy equals the true ground
// energy on every model. (The kernels draw different RNG stream shapes, so
// per-sample equality is not expected — ground-state parity is the
// contract, and it is what BENCH_quantum.json asserts too.)
TEST(QuantumConformance, GroundStatesUnchangedOnRandomModels) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Xoshiro256 rng(seed, 42);
    const qubo::QuboModel model = random_model(10, rng);
    const double ground = anneal::ExactSolver().ground_energy(model);

    const auto params = conformance_params(seed);
    const anneal::SampleSet now =
        anneal::PathIntegralAnnealer(params).sample(model);
    const anneal::SampleSet before =
        anneal::detail::pimc_sample_reference(model, params);

    EXPECT_NEAR(now.lowest_energy(), ground, 1e-9) << "seed " << seed;
    EXPECT_NEAR(before.lowest_energy(), ground, 1e-9) << "seed " << seed;
    EXPECT_NEAR(now.lowest_energy(), before.lowest_energy(), 1e-9)
        << "kernel parity broke for seed " << seed;
  }
}

TEST(QuantumConformance, GroundStatesUnchangedOnStringModels) {
  const std::vector<qubo::QuboModel> models = {
      strqubo::build_equality("hi"),
      strqubo::build_palindrome(3),
      strqubo::build_palindrome(4),
  };
  for (std::size_t m = 0; m < models.size(); ++m) {
    const double ground = anneal::ExactSolver().ground_energy(models[m]);
    const auto params = conformance_params(m + 1);
    const anneal::SampleSet now =
        anneal::PathIntegralAnnealer(params).sample(models[m]);
    const anneal::SampleSet before =
        anneal::detail::pimc_sample_reference(models[m], params);
    EXPECT_NEAR(now.lowest_energy(), ground, 1e-9) << "model " << m;
    EXPECT_NEAR(before.lowest_energy(), ground, 1e-9) << "model " << m;
  }
}

// The embedding overhaul (parallel attempts, epoch-stamped BFS, free list)
// plus the structure-keyed cache must leave embedded solving exact: a cold
// solve and a warm cache-hit solve both reach the true ground energy.
TEST(QuantumConformance, EmbeddedSamplerGroundStatesUnchanged) {
  const graph::Graph target = graph::make_chimera(4, 4, 4);
  graph::EmbeddedSamplerParams params;
  params.anneal.num_reads = 32;
  params.anneal.num_sweeps = 256;
  params.anneal.seed = 9;
  params.embedding_seed = 9;
  const graph::EmbeddedSampler sampler(target, params);

  const auto model = strqubo::build_palindrome(4);
  const double ground = anneal::ExactSolver().ground_energy(model);
  EXPECT_NEAR(sampler.sample(model).lowest_energy(), ground, 1e-9);
  // Second solve is served from the embedding cache; same ground state.
  EXPECT_NEAR(sampler.sample(model).lowest_energy(), ground, 1e-9);
  EXPECT_EQ(sampler.embedding_cache_hits(), 1u);
}

}  // namespace
}  // namespace qsmt

// Tests for the batched multi-replica annealing substrate: bit-identity
// against the scalar per-read oracle across replica counts, thread counts,
// and sweep paths (AVX2 vs portable scalar), multi-group fusion vs solo
// runs, once-per-sweep group cancellation, and early-exit bookkeeping.
#include <gtest/gtest.h>

#include <omp.h>

#include <chrono>
#include <cstdlib>
#include <vector>

#include "anneal/batched_kernel.hpp"
#include "anneal/schedule.hpp"
#include "anneal/simulated_annealer.hpp"
#include "qubo/adjacency.hpp"
#include "qubo/qubo_model.hpp"
#include "strqubo/builders.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace qsmt::anneal {
namespace {

qubo::QuboModel random_model(std::size_t n, double density, Xoshiro256& rng) {
  qubo::QuboModel model(n);
  for (std::size_t i = 0; i < n; ++i)
    model.add_linear(i, rng.uniform() * 2.0 - 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < density)
        model.add_quadratic(i, j, rng.uniform() * 2.0 - 1.0);
    }
  }
  return model;
}

// The serving workload the substrate was built for: a real string QUBO.
qubo::QuboModel string_model() {
  return strqubo::build(strqubo::Palindrome{6}, {});
}

void expect_same_sample_sets(const SampleSet& a, const SampleSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].energy, b[k].energy) << "sample " << k;
    EXPECT_EQ(a[k].bits, b[k].bits) << "sample " << k;
    EXPECT_EQ(a[k].num_occurrences, b[k].num_occurrences) << "sample " << k;
  }
}

SampleSet sample_with_mode(const qubo::QuboAdjacency& adjacency,
                           SimulatedAnnealerParams params, SweepMode mode) {
  params.sweep_mode = mode;
  const SimulatedAnnealer annealer(params);
  return annealer.sample(adjacency);
}

// The load-bearing guarantee: for every replica count — below, at, and
// across the 16-lane block boundary — the batched kernel must reproduce the
// scalar per-read path bit for bit, energies and all, on both a random
// dense-ish QUBO and a real string encoding.
TEST(BatchedKernel, BitIdenticalToScalarAcrossReadCounts) {
  Xoshiro256 model_rng(11, 0);
  const std::vector<qubo::QuboModel> models = {random_model(48, 0.25, model_rng),
                                               string_model()};
  for (std::size_t m = 0; m < models.size(); ++m) {
    const qubo::QuboAdjacency adjacency(models[m]);
    for (const std::size_t reads : {1u, 2u, 5u, 8u, 16u, 17u, 32u}) {
      SimulatedAnnealerParams params;
      params.num_reads = reads;
      params.num_sweeps = 64;
      params.seed = 90 + reads;
      const SampleSet scalar =
          sample_with_mode(adjacency, params, SweepMode::kScalar);
      const SampleSet batched =
          sample_with_mode(adjacency, params, SweepMode::kBatched);
      SCOPED_TRACE("model " + std::to_string(m) + " reads " +
                   std::to_string(reads));
      expect_same_sample_sets(scalar, batched);
    }
  }
}

// kAuto routes multi-read runs onto the batched kernel; the dispatch must
// be invisible in the output.
TEST(BatchedKernel, AutoModeMatchesScalarOracle) {
  Xoshiro256 model_rng(12, 0);
  const qubo::QuboModel model = random_model(40, 0.2, model_rng);
  const qubo::QuboAdjacency adjacency(model);
  SimulatedAnnealerParams params;
  params.num_reads = 24;
  params.num_sweeps = 96;
  params.seed = 7;
  expect_same_sample_sets(
      sample_with_mode(adjacency, params, SweepMode::kScalar),
      sample_with_mode(adjacency, params, SweepMode::kAuto));
}

// Early exit disabled must also agree (full-length reads exercise the whole
// schedule instead of settling, a different flip history).
TEST(BatchedKernel, BitIdenticalWithEarlyExitDisabled) {
  Xoshiro256 model_rng(13, 0);
  const qubo::QuboModel model = random_model(32, 0.3, model_rng);
  const qubo::QuboAdjacency adjacency(model);
  SimulatedAnnealerParams params;
  params.num_reads = 12;
  params.num_sweeps = 48;
  params.seed = 3;
  params.early_exit = false;
  expect_same_sample_sets(
      sample_with_mode(adjacency, params, SweepMode::kScalar),
      sample_with_mode(adjacency, params, SweepMode::kBatched));
}

// Blocks are independent, so OpenMP thread count must not change anything.
TEST(BatchedKernel, ThreadCountDoesNotChangeResults) {
  Xoshiro256 model_rng(14, 0);
  const qubo::QuboModel model = random_model(36, 0.25, model_rng);
  const qubo::QuboAdjacency adjacency(model);
  SimulatedAnnealerParams params;
  params.num_reads = 33;  // Three blocks, the last one partial.
  params.num_sweeps = 64;
  params.seed = 21;
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  const SampleSet one = sample_with_mode(adjacency, params, SweepMode::kBatched);
  omp_set_num_threads(4);
  const SampleSet four =
      sample_with_mode(adjacency, params, SweepMode::kBatched);
  omp_set_num_threads(saved);
  expect_same_sample_sets(one, four);
}

// The AVX2 sweep path and the portable scalar path must agree lane for
// lane on bits, fields, and flip counters (force_scalar pins the portable
// path; the other kernel takes whatever the runtime dispatch picks, so on
// non-AVX2 hosts this degenerates to scalar-vs-scalar and still holds).
TEST(BatchedKernel, Avx2AndScalarSweepPathsAgree) {
  Xoshiro256 model_rng(15, 0);
  const qubo::QuboModel model = random_model(44, 0.3, model_rng);
  const qubo::QuboAdjacency adjacency(model);
  const BetaRange range = default_beta_range(adjacency);
  const std::vector<double> betas =
      make_schedule(range.hot, range.cold, 80, Interpolation::kGeometric);

  std::vector<BatchedGroup> groups(2);
  groups[0].seed = 5;
  groups[0].num_replicas = 9;
  groups[1].seed = 6;
  groups[1].num_replicas = 12;

  BatchedSweepKernel dispatched(adjacency, groups);
  dispatched.run(betas, /*allow_early_exit=*/true, /*force_scalar=*/false);
  BatchedSweepKernel scalar(adjacency, groups);
  scalar.run(betas, /*allow_early_exit=*/true, /*force_scalar=*/true);

  EXPECT_FALSE(scalar.used_avx2());
  EXPECT_EQ(dispatched.used_avx2(), batched_avx2_enabled());
  ASSERT_EQ(dispatched.num_lanes(), scalar.num_lanes());
  for (std::size_t lane = 0; lane < dispatched.num_lanes(); ++lane) {
    SCOPED_TRACE("lane " + std::to_string(lane));
    const auto a = dispatched.lane_bits(lane);
    const auto b = scalar.lane_bits(lane);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    const auto fa = dispatched.lane_field(lane);
    const auto fb = scalar.lane_field(lane);
    for (std::size_t i = 0; i < fa.size(); ++i) EXPECT_EQ(fa[i], fb[i]);
    const ReadStats sa = dispatched.lane_stats(lane);
    const ReadStats sb = scalar.lane_stats(lane);
    EXPECT_EQ(sa.flips, sb.flips);
    EXPECT_EQ(sa.sweeps_executed, sb.sweeps_executed);
    EXPECT_EQ(sa.early_exit, sb.early_exit);
  }
}

// Fusing many groups into one kernel invocation must be invisible per
// group: each group's SampleSet equals a solo scalar sample() run with that
// group's seed.
TEST(BatchedKernel, FusedGroupsMatchSoloRuns) {
  Xoshiro256 model_rng(16, 0);
  const qubo::QuboModel model = random_model(30, 0.3, model_rng);
  const qubo::QuboAdjacency adjacency(model);
  SimulatedAnnealerParams params;
  params.num_sweeps = 64;

  const std::vector<std::uint64_t> seeds = {101, 202, 303};
  const std::vector<std::size_t> replicas = {4, 8, 3};
  std::vector<BatchedGroup> groups(seeds.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    groups[g].seed = seeds[g];
    groups[g].num_replicas = replicas[g];
  }
  params.num_reads = 1;  // Overridden per group below.
  const std::vector<SampleSet> fused =
      sample_batched(adjacency, params, groups);
  ASSERT_EQ(fused.size(), groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    SimulatedAnnealerParams solo = params;
    solo.num_reads = replicas[g];
    solo.seed = seeds[g];
    SCOPED_TRACE("group " + std::to_string(g));
    expect_same_sample_sets(
        sample_with_mode(adjacency, solo, SweepMode::kScalar), fused[g]);
  }
}

// Satellite: a cancel that lands mid-batch stops every fused group within
// one sweep. All four groups fit one 16-lane block, so their once-per-sweep
// polls happen in the same sweep loop; an expired deadline must take every
// group out at (at most) adjacent sweep boundaries, far short of the
// schedule.
TEST(BatchedKernel, MidBatchCancelStopsAllGroupsWithinOneSweep) {
  Xoshiro256 model_rng(17, 0);
  const qubo::QuboModel model = random_model(96, 0.2, model_rng);
  const qubo::QuboAdjacency adjacency(model);
  const std::size_t scheduled = 2000000;
  const std::vector<double> betas =
      make_schedule(0.1, 3.0, scheduled, Interpolation::kGeometric);

  CancelSource source;
  source.set_deadline_after(std::chrono::milliseconds(30));
  std::vector<BatchedGroup> groups(4);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    groups[g].seed = g;
    groups[g].num_replicas = 4;
    groups[g].cancel = source.token();
  }
  BatchedSweepKernel kernel(adjacency, groups);
  // Early exit off: nothing but the cancel may shorten the run.
  kernel.run(betas, /*allow_early_exit=*/false);

  std::size_t lo = scheduled, hi = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const BatchedGroupStats stats = kernel.group_stats(g);
    EXPECT_TRUE(stats.cancelled) << "group " << g;
    EXPECT_LT(stats.sweeps_executed, scheduled) << "group " << g;
    lo = std::min(lo, stats.sweeps_executed);
    hi = std::max(hi, stats.sweeps_executed);
  }
  EXPECT_LE(hi - lo, 1u);
}

// A group cancelled before the run starts executes zero sweeps and its
// lanes keep their initial random states unannealed, exactly like the
// scalar path's cancelled-before-read bookkeeping; sibling groups are
// unaffected.
TEST(BatchedKernel, PreCancelledGroupRunsZeroSweeps) {
  Xoshiro256 model_rng(18, 0);
  const qubo::QuboModel model = random_model(24, 0.3, model_rng);
  const qubo::QuboAdjacency adjacency(model);
  const std::vector<double> betas =
      make_schedule(0.2, 4.0, 32, Interpolation::kGeometric);

  CancelSource source;
  source.cancel();
  std::vector<BatchedGroup> groups(2);
  groups[0].seed = 1;
  groups[0].num_replicas = 4;
  groups[0].cancel = source.token();
  groups[1].seed = 2;
  groups[1].num_replicas = 4;
  BatchedSweepKernel kernel(adjacency, groups);
  kernel.run(betas);

  const BatchedGroupStats cancelled = kernel.group_stats(0);
  EXPECT_TRUE(cancelled.cancelled);
  EXPECT_EQ(cancelled.sweeps_executed, 0u);
  EXPECT_EQ(cancelled.total_flips, 0u);
  for (std::size_t lane = 0; lane < 4; ++lane) {
    EXPECT_FALSE(kernel.lane_annealed(lane)) << "lane " << lane;
  }
  const BatchedGroupStats live = kernel.group_stats(1);
  EXPECT_FALSE(live.cancelled);
  EXPECT_GT(live.sweeps_executed, 0u);
  for (std::size_t lane = 4; lane < 8; ++lane) {
    EXPECT_TRUE(kernel.lane_annealed(lane)) << "lane " << lane;
  }
}

// The per-lane zero-flip exit must surface in the group aggregates the
// same way the scalar kernel's ReadStats do.
TEST(BatchedKernel, EarlyExitIsRecordedInGroupStats) {
  // Strong uniform linear fields: every replica settles to all-zeros almost
  // immediately, so with a long monotone schedule every lane exits early.
  qubo::QuboModel model(16);
  for (std::size_t i = 0; i < 16; ++i) model.add_linear(i, 5.0);
  const qubo::QuboAdjacency adjacency(model);

  SimulatedAnnealerParams params;
  params.num_reads = 8;
  params.num_sweeps = 512;
  params.seed = 4;
  params.beta_hot = 2.0;
  params.beta_cold = 10.0;
  std::vector<BatchedGroup> groups(1);
  groups[0].seed = params.seed;
  groups[0].num_replicas = params.num_reads;
  const BetaRange range{*params.beta_hot, *params.beta_cold};
  const std::vector<double> betas = make_schedule(
      range.hot, range.cold, params.num_sweeps, Interpolation::kGeometric);
  BatchedSweepKernel kernel(adjacency, groups);
  kernel.run(betas);

  const BatchedGroupStats stats = kernel.group_stats(0);
  EXPECT_EQ(stats.replicas, 8u);
  EXPECT_FALSE(stats.cancelled);
  EXPECT_GT(stats.replicas_early_exited, 0u);
  EXPECT_LT(stats.sweeps_executed, params.num_sweeps);
  // And the scalar oracle agrees wholesale.
  expect_same_sample_sets(
      sample_with_mode(adjacency, params, SweepMode::kScalar),
      sample_with_mode(adjacency, params, SweepMode::kBatched));
}

}  // namespace
}  // namespace qsmt::anneal

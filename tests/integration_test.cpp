// Cross-module integration tests: the full Figure-1 pipeline driven through
// every sampler backend, the SMT front end over the hardware-simulation
// stack, and quantum/classical parity.
#include <gtest/gtest.h>

#include <memory>

#include "anneal/exact.hpp"
#include "anneal/greedy.hpp"
#include "anneal/pimc.hpp"
#include "anneal/simulated_annealer.hpp"
#include "anneal/tabu.hpp"
#include "graph/chimera.hpp"
#include "qubo/serialize.hpp"
#include "graph/embedded_sampler.hpp"
#include "sat/dpllt.hpp"
#include "smtlib/driver.hpp"
#include "smtlib/parser.hpp"
#include "strqubo/pipeline.hpp"

namespace qsmt {
namespace {

// --- Every sampler backend solves the same constraint set -------------------

class EverySamplerBackend
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<anneal::Sampler> make(const std::string& kind) const {
    if (kind == "sa") {
      anneal::SimulatedAnnealerParams p;
      p.num_reads = 48;
      p.num_sweeps = 256;
      p.seed = 5;
      return std::make_unique<anneal::SimulatedAnnealer>(p);
    }
    if (kind == "pimc") {
      anneal::PathIntegralParams p;
      p.num_reads = 24;
      p.num_sweeps = 192;
      p.seed = 5;
      return std::make_unique<anneal::PathIntegralAnnealer>(p);
    }
    if (kind == "tabu") {
      anneal::TabuParams p;
      p.num_restarts = 24;
      p.seed = 5;
      return std::make_unique<anneal::TabuSampler>(p);
    }
    if (kind == "greedy") {
      anneal::GreedyDescentParams p;
      p.num_reads = 256;
      p.seed = 5;
      return std::make_unique<anneal::GreedyDescent>(p);
    }
    return std::make_unique<anneal::ExactSolver>();
  }
};

TEST_P(EverySamplerBackend, SolvesCoreConstraints) {
  const auto sampler = make(GetParam());
  const strqubo::StringConstraintSolver solver(*sampler);
  // Keep instances small enough for the exact backend too.
  const std::vector<strqubo::Constraint> constraints{
      strqubo::Equality{"hi"},
      strqubo::Palindrome{2},
      strqubo::Includes{"abcab", "ab"},
  };
  for (const auto& constraint : constraints) {
    const auto result = solver.solve(constraint);
    EXPECT_TRUE(result.satisfied)
        << GetParam() << " on " << strqubo::describe(constraint);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, EverySamplerBackend,
                         ::testing::Values("sa", "pimc", "tabu", "greedy",
                                           "exact"));

// --- Hardware simulation stack end to end ----------------------------------

TEST(HardwareStack, SmtScriptOverEmbeddedSampler) {
  const graph::Graph chimera = graph::make_chimera(4, 4, 4);
  graph::EmbeddedSamplerParams params;
  params.anneal.num_reads = 48;
  params.anneal.num_sweeps = 384;
  params.anneal.seed = 3;
  const graph::EmbeddedSampler sampler(chimera, params);

  smtlib::SmtDriver driver(sampler);
  const std::string out = driver.run_script(R"(
    (declare-const x String)
    (assert (= x "ok"))
    (check-sat)
    (get-model)
  )");
  EXPECT_NE(out.find("sat\n"), std::string::npos);
  EXPECT_NE(out.find("\"ok\""), std::string::npos);
}

TEST(HardwareStack, PalindromeThroughEmbedding) {
  const graph::Graph chimera = graph::make_chimera(4, 4, 4);
  graph::EmbeddedSamplerParams params;
  params.anneal.num_reads = 64;
  params.anneal.num_sweeps = 512;
  params.anneal.seed = 11;
  const graph::EmbeddedSampler sampler(chimera, params);
  const strqubo::StringConstraintSolver solver(sampler);
  const auto result = solver.solve(strqubo::Palindrome{4});
  EXPECT_TRUE(result.satisfied);
}

// --- Pipeline over the quantum simulator ------------------------------------

TEST(QuantumPipeline, Table1RowOneOnPimc) {
  anneal::PathIntegralParams p;
  p.num_reads = 24;
  p.num_sweeps = 256;
  p.seed = 9;
  const anneal::PathIntegralAnnealer annealer(p);
  const strqubo::StringConstraintSolver solver(annealer);
  strqubo::Pipeline pipeline{strqubo::Reverse{"hello"}};
  pipeline.then(strqubo::ThenReplaceAll{'e', 'a'});
  const auto result = pipeline.run(solver);
  EXPECT_EQ(result.final_value, "ollah");
  EXPECT_TRUE(result.all_satisfied);
}

TEST(QuantumClassicalParity, SameGroundEnergyOnPalindrome) {
  const auto model = strqubo::build_palindrome(3);
  anneal::SimulatedAnnealerParams sp;
  sp.num_reads = 32;
  sp.num_sweeps = 256;
  sp.seed = 2;
  anneal::PathIntegralParams qp;
  qp.num_reads = 16;
  qp.num_sweeps = 256;
  qp.seed = 2;
  const double classical =
      anneal::SimulatedAnnealer(sp).sample(model).lowest_energy();
  const double quantum =
      anneal::PathIntegralAnnealer(qp).sample(model).lowest_energy();
  EXPECT_DOUBLE_EQ(classical, quantum);
  EXPECT_DOUBLE_EQ(classical, 0.0);
}

// --- DPLL(T) over the whole stack -------------------------------------------

TEST(FullStack, DpllTWithRegexBranches) {
  anneal::SimulatedAnnealerParams p;
  p.num_reads = 48;
  p.num_sweeps = 256;
  p.seed = 21;
  const anneal::SimulatedAnnealer annealer(p);
  const sat::DpllTSolver solver(annealer);

  std::vector<smtlib::TermPtr> assertions;
  std::map<std::string, smtlib::Sort> declared;
  for (const auto& command : smtlib::parse_script(R"(
        (declare-const x String)
        (assert (= (str.len x) 3))
        (assert (or (str.in_re x (re.+ (str.to_re "z")))
                    (str.contains x "ab")))
        (assert (not (= x "zzz")))
      )")) {
    if (const auto* decl = std::get_if<smtlib::DeclareConst>(&command)) {
      declared.emplace(decl->name, decl->sort);
    } else if (const auto* a = std::get_if<smtlib::AssertCmd>(&command)) {
      assertions.push_back(a->term);
    }
  }
  const auto result = solver.solve(assertions, declared);
  ASSERT_EQ(result.status, smtlib::CheckSatStatus::kSat);
  // zzz is excluded, so the witness must take the contains branch.
  EXPECT_NE(result.model_value.find("ab"), std::string::npos);
}

// --- Model serialization across the stack -----------------------------------

TEST(FullStack, SerializedModelSolvesIdentically) {
  const auto model = strqubo::build(strqubo::RegexMatch{"a[bc]+", 4});
  const auto restored =
      qubo::from_coo_string(qubo::to_coo_string(model));
  const anneal::ExactSolver exact;
  EXPECT_DOUBLE_EQ(exact.ground_energy(model), exact.ground_energy(restored));
}

}  // namespace
}  // namespace qsmt

#include <gtest/gtest.h>

#include "anneal/exact.hpp"
#include "graph/chimera.hpp"
#include "graph/embedded_sampler.hpp"
#include "strqubo/builders.hpp"

namespace qsmt::graph {
namespace {

EmbeddedSamplerParams fast_params(std::uint64_t seed) {
  EmbeddedSamplerParams p;
  p.anneal.num_reads = 32;
  p.anneal.num_sweeps = 256;
  p.anneal.seed = seed;
  p.embedding_seed = seed;
  return p;
}

TEST(EmbeddedSampler, RequiresFinalizedTarget) {
  Graph target(4);
  target.add_edge(0, 1);
  EXPECT_THROW(EmbeddedSampler(target, fast_params(0)),
               std::invalid_argument);
}

TEST(EmbeddedSampler, SolvesDiagonalEqualityModel) {
  const Graph target = make_chimera(3, 3, 4);
  const EmbeddedSampler sampler(target, fast_params(1));
  const auto model = strqubo::build_equality("hi");
  const anneal::SampleSet samples = sampler.sample(model);
  ASSERT_FALSE(samples.empty());
  // Ground energy of a diagonal equality model is -popcount.
  const double ground = anneal::ExactSolver().ground_energy(model);
  EXPECT_NEAR(samples.lowest_energy(), ground, 1e-9);
}

TEST(EmbeddedSampler, SolvesPalindromeModel) {
  const Graph target = make_chimera(4, 4, 4);
  const EmbeddedSampler sampler(target, fast_params(2));
  const auto model = strqubo::build_palindrome(4);
  const anneal::SampleSet samples = sampler.sample(model);
  EXPECT_NEAR(samples.lowest_energy(), 0.0, 1e-9);
}

TEST(EmbeddedSampler, ThrowsWhenTargetTooSmall) {
  const Graph target = make_chimera(1, 1, 1);  // 2 qubits.
  const EmbeddedSampler sampler(target, fast_params(3));
  const auto model = strqubo::build_palindrome(4);  // 28 variables.
  EXPECT_THROW(sampler.sample(model), std::runtime_error);
}

TEST(EmbeddedSampler, EmbedModelPreservesLogicalEnergiesWhenChainsAgree) {
  const Graph target = make_chimera(2, 2, 4);
  const EmbeddedSampler sampler(target, fast_params(4));

  qubo::QuboModel logical(3);
  logical.add_linear(0, -1.0);
  logical.add_linear(1, 0.5);
  logical.add_quadratic(0, 1, 1.5);
  logical.add_quadratic(1, 2, -0.5);

  const Graph lg = logical_graph(logical);
  const auto embedding = find_embedding(lg, target, 4);
  ASSERT_TRUE(embedding.has_value());
  const double chain_strength = 4.0;
  const qubo::QuboModel physical =
      sampler.embed_model(logical, *embedding, chain_strength);

  // For every logical assignment, setting every chain consistently must
  // reproduce the logical energy (chain gadgets contribute zero).
  for (unsigned mask = 0; mask < 8; ++mask) {
    std::vector<std::uint8_t> logical_bits(3);
    for (std::size_t v = 0; v < 3; ++v) logical_bits[v] = (mask >> v) & 1;
    std::vector<std::uint8_t> physical_bits(target.num_nodes(), 0);
    for (std::size_t v = 0; v < 3; ++v) {
      for (std::uint32_t q : embedding->chains[v]) {
        physical_bits[q] = logical_bits[v];
      }
    }
    EXPECT_NEAR(physical.energy(physical_bits), logical.energy(logical_bits),
                1e-9)
        << "mask=" << mask;
  }
}

TEST(EmbeddedSampler, BrokenChainsCostChainStrength) {
  const Graph target = make_chimera(2, 2, 4);
  const EmbeddedSampler sampler(target, fast_params(5));

  qubo::QuboModel logical(2);
  logical.add_quadratic(0, 1, 1.0);
  const Graph lg = logical_graph(logical);
  const auto embedding = find_embedding(lg, target, 2);
  ASSERT_TRUE(embedding.has_value());
  const qubo::QuboModel physical =
      sampler.embed_model(logical, *embedding, 3.0);

  // All-zero is a ground state; breaking one chain (if longer than one
  // qubit) costs at least the chain strength.
  std::vector<std::uint8_t> bits(target.num_nodes(), 0);
  const double base = physical.energy(bits);
  for (std::size_t v = 0; v < embedding->chains.size(); ++v) {
    if (embedding->chains[v].size() < 2) continue;
    bits[embedding->chains[v][0]] = 1;  // Break the chain.
    EXPECT_GE(physical.energy(bits), base + 3.0 - 1e-9);
    bits[embedding->chains[v][0]] = 0;
  }
}

TEST(EmbeddedSampler, ReportsStats) {
  const Graph target = make_chimera(3, 3, 4);
  const EmbeddedSampler sampler(target, fast_params(6));
  const auto model = strqubo::build_palindrome(3);

  EmbeddedSampleStats stats;
  const anneal::SampleSet samples = sampler.sample_with_stats(model, stats);
  EXPECT_FALSE(samples.empty());
  EXPECT_EQ(stats.embedding.num_logical(), model.num_variables());
  EXPECT_GE(stats.physical_variables, model.num_variables());
  EXPECT_GE(stats.chain_break_fraction, 0.0);
  EXPECT_LE(stats.chain_break_fraction, 1.0);
}

TEST(EmbeddedSampler, DiscardModeDropsBrokenSamples) {
  const Graph target = make_chimera(3, 3, 4);
  EmbeddedSamplerParams params = fast_params(7);
  params.chain_break_resolution = ChainBreakResolution::kDiscard;
  // Deliberately weak chains to provoke breaks.
  params.chain_strength = 0.05;
  params.anneal.num_sweeps = 8;
  const EmbeddedSampler sampler(target, params);

  const auto model = strqubo::build_palindrome(4);
  EmbeddedSampleStats stats;
  const anneal::SampleSet samples = sampler.sample_with_stats(model, stats);
  // Whatever survives plus what was discarded accounts for every read.
  EXPECT_EQ(samples.total_reads() + stats.discarded_samples,
            params.anneal.num_reads);
}

TEST(EmbeddedSampler, EmbeddingCacheReusesSameShapedProblems) {
  const Graph target = make_chimera(3, 3, 4);
  const EmbeddedSampler sampler(target, fast_params(8));
  // Two palindromes of the same length share a logical edge set; a third
  // of a different length does not.
  const auto a = strqubo::build_palindrome(3);
  const auto b = strqubo::build_palindrome(3);
  const auto c = strqubo::build_palindrome(4);
  (void)sampler.sample(a);
  EXPECT_EQ(sampler.embedding_cache_hits(), 0u);
  (void)sampler.sample(b);
  EXPECT_EQ(sampler.embedding_cache_hits(), 1u);
  (void)sampler.sample(c);
  EXPECT_EQ(sampler.embedding_cache_hits(), 1u);
  (void)sampler.sample(a);
  EXPECT_EQ(sampler.embedding_cache_hits(), 2u);
}

TEST(EmbeddedSampler, CachedEmbeddingStillSolvesCorrectly) {
  const Graph target = make_chimera(3, 3, 4);
  const EmbeddedSampler sampler(target, fast_params(9));
  const auto model = strqubo::build_palindrome(3);
  const double first = sampler.sample(model).lowest_energy();
  const double second = sampler.sample(model).lowest_energy();
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_NEAR(first, 0.0, 1e-9);
}

TEST(EmbeddedSampler, NameIsStable) {
  const Graph target = make_chimera(1, 1, 2);
  EXPECT_EQ(EmbeddedSampler(target, fast_params(0)).name(),
            "embedded-annealer");
}

}  // namespace
}  // namespace qsmt::graph

// Canonical answer cache (src/canon/answer_cache.hpp) and its SolveService
// integration: LRU/byte budgets, snapshot round-trips, verified-hit serving
// with exactly-once hit/miss/fallback counters, poisoned-entry fallback,
// pipelines chaining through hits, and — the telemetry satellite — mirror
// equality between every cache layer's occupancy gauges
// (*.cache.{entries,bytes}) and its deterministic stats struct.
#include "canon/answer_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "canon/canon.hpp"
#include "graph/embedding_cache.hpp"
#include "smtlib/incremental.hpp"
#include "service/service.hpp"
#include "telemetry/telemetry.hpp"

namespace qsmt {
namespace {

canon::CachedAnswer sat_answer(const std::string& text) {
  canon::CachedAnswer answer;
  answer.status = smtlib::CheckSatStatus::kSat;
  answer.text = text;
  return answer;
}

TEST(AnswerCacheTest, LookupHitRefreshesLruPosition) {
  canon::AnswerCacheOptions options;
  options.max_entries = 2;
  canon::AnswerCache cache(options);
  cache.insert("a", sat_answer("A"));
  cache.insert("b", sat_answer("B"));
  // Touch "a" so "b" is now the LRU tail.
  ASSERT_TRUE(cache.lookup("a").has_value());
  cache.insert("c", sat_answer("C"));
  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_TRUE(cache.lookup("c").has_value());
  const canon::AnswerCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(AnswerCacheTest, ByteBudgetEvictsTail) {
  canon::AnswerCacheOptions options;
  options.max_bytes = 300;  // Roughly two entries' worth of overhead.
  canon::AnswerCache cache(options);
  cache.insert("first", sat_answer(std::string(64, 'x')));
  cache.insert("second", sat_answer(std::string(64, 'y')));
  cache.insert("third", sat_answer(std::string(64, 'z')));
  EXPECT_LE(cache.bytes(), options.max_bytes);
  EXPECT_LT(cache.size(), 3u);
  EXPECT_FALSE(cache.lookup("first").has_value());
  EXPECT_TRUE(cache.lookup("third").has_value());
}

TEST(AnswerCacheTest, AlwaysKeepsOneEntryEvenOverBudget) {
  canon::AnswerCacheOptions options;
  options.max_bytes = 1;
  canon::AnswerCache cache(options);
  cache.insert("k", sat_answer(std::string(1024, 'x')));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(AnswerCacheTest, UnknownVerdictsAreRejected) {
  canon::AnswerCache cache;
  canon::CachedAnswer unknown;
  unknown.status = smtlib::CheckSatStatus::kUnknown;
  cache.insert("k", unknown);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(AnswerCacheTest, InsertRefreshesExistingKey) {
  canon::AnswerCache cache;
  cache.insert("k", sat_answer("old"));
  cache.insert("k", sat_answer("new"));
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->text, "new");
}

TEST(AnswerCacheTest, SnapshotRoundTripsEveryFieldShape) {
  canon::AnswerCache cache;
  // Keys and payloads deliberately contain the canonical-form separators,
  // newlines, and spaces the hex encoding must survive.
  canon::CachedAnswer with_position = sat_answer("hello world");
  with_position.position = 3;
  with_position.variable = "v0";
  cache.insert(std::string("key\x1d\x1ewith\nseps"), with_position);

  canon::CachedAnswer no_occurrence;
  no_occurrence.status = smtlib::CheckSatStatus::kSat;
  no_occurrence.position = std::nullopt;  // Verified "no occurrence".
  cache.insert("includes-key", no_occurrence);

  canon::CachedAnswer unsat;
  unsat.status = smtlib::CheckSatStatus::kUnsat;
  unsat.note = "line one\nline two";
  cache.insert("unsat-key", unsat);

  canon::CachedAnswer empty_text = sat_answer("");
  cache.insert("empty-text-key", empty_text);

  const std::string snapshot = cache.save_snapshot();
  canon::AnswerCache restored;
  ASSERT_TRUE(restored.load_snapshot(snapshot));
  EXPECT_EQ(restored.size(), 4u);
  EXPECT_EQ(restored.bytes(), cache.bytes());

  auto hit = restored.lookup(std::string("key\x1d\x1ewith\nseps"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->text, "hello world");
  EXPECT_EQ(hit->position, std::optional<std::size_t>(3));
  EXPECT_EQ(hit->variable, "v0");

  hit = restored.lookup("includes-key");
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->text.has_value());
  EXPECT_FALSE(hit->position.has_value());

  hit = restored.lookup("unsat-key");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->status, smtlib::CheckSatStatus::kUnsat);
  EXPECT_EQ(hit->note, "line one\nline two");

  hit = restored.lookup("empty-text-key");
  ASSERT_TRUE(hit.has_value());
  ASSERT_TRUE(hit->text.has_value());
  EXPECT_EQ(*hit->text, "");

  // Round-trip stability: a snapshot of the restored cache re-loads too.
  canon::AnswerCache again;
  EXPECT_TRUE(again.load_snapshot(restored.save_snapshot()));
  EXPECT_EQ(again.size(), 4u);
}

TEST(AnswerCacheTest, MalformedSnapshotLeavesCacheUntouched) {
  canon::AnswerCache cache;
  cache.insert("keep", sat_answer("kept"));
  const char* malformed[] = {
      "",
      "not-the-header\n",
      "qsmt-answer-cache v2\n",
      "qsmt-answer-cache v1\nentry sat ~\n",
      "qsmt-answer-cache v1\nentry maybe ~ 6b - - -\n",
      "qsmt-answer-cache v1\nentry sat twelve 6b - - -\n",
      "qsmt-answer-cache v1\nentry sat ~ zz - - -\n",
      "qsmt-answer-cache v1\nentry sat ~ 6b x61 - -\n",  // Text missing 't'.
      "qsmt-answer-cache v1\nentry sat ~ 6b - - - extra\n",
      "qsmt-answer-cache v1\nwrong sat ~ 6b - - -\n",
  };
  for (const char* snapshot : malformed) {
    EXPECT_FALSE(cache.load_snapshot(snapshot)) << snapshot;
    EXPECT_EQ(cache.size(), 1u) << snapshot;
    EXPECT_TRUE(cache.lookup("keep").has_value()) << snapshot;
  }
}

TEST(AnswerCacheTest, LoadSnapshotReappliesBudgets) {
  canon::AnswerCache big;
  for (int i = 0; i < 8; ++i) {
    big.insert("key" + std::to_string(i), sat_answer(std::string(32, 'a')));
  }
  canon::AnswerCacheOptions tight;
  tight.max_entries = 3;
  canon::AnswerCache small(tight);
  ASSERT_TRUE(small.load_snapshot(big.save_snapshot()));
  EXPECT_EQ(small.size(), 3u);
  // MRU-first snapshot order: the most recent entries survive.
  EXPECT_TRUE(small.lookup("key7").has_value());
  EXPECT_FALSE(small.lookup("key0").has_value());
}

// --- Service integration ---------------------------------------------------

service::ServiceOptions exact_service(
    std::shared_ptr<canon::AnswerCache> cache) {
  service::ServiceOptions options;
  options.portfolio = {service::exact_member("exact")};
  options.num_workers = 2;
  options.answer_cache = std::move(cache);
  return options;
}

TEST(AnswerCacheServiceTest, SecondIdenticalConstraintJobIsServedFromCache) {
  auto cache = std::make_shared<canon::AnswerCache>();
  service::SolveService solver(exact_service(cache));

  const strqubo::Constraint constraint = strqubo::Equality{"ab"};
  const service::JobResult cold = solver.submit(constraint, {}).get();
  ASSERT_EQ(cold.status, smtlib::CheckSatStatus::kSat);
  EXPECT_FALSE(cold.answer_cache_hit);
  ASSERT_TRUE(cold.text.has_value());

  const service::JobResult warm = solver.submit(constraint, {}).get();
  EXPECT_TRUE(warm.answer_cache_hit);
  EXPECT_EQ(warm.winner, "answer-cache");
  EXPECT_EQ(warm.attempts, 0u);
  EXPECT_EQ(warm.status, cold.status);
  EXPECT_EQ(warm.text, cold.text);  // Byte-identical witness.
  EXPECT_EQ(warm.position, cold.position);

  const service::SolveService::Stats stats = solver.stats();
  EXPECT_EQ(stats.answer_hits, 1u);
  EXPECT_EQ(stats.answer_misses, 1u);
  EXPECT_EQ(stats.answer_fallbacks, 0u);
  EXPECT_EQ(cache->stats().hits, stats.answer_hits + stats.answer_fallbacks);
  EXPECT_EQ(cache->stats().misses, stats.answer_misses);
}

TEST(AnswerCacheServiceTest, AlphaVariantScriptHitRemapsTheWitnessVariable) {
  auto cache = std::make_shared<canon::AnswerCache>();
  service::SolveService solver(exact_service(cache));

  const service::JobResult cold = solver
                                      .submit_script(
                                          "(declare-const x String)\n"
                                          "(assert (= x \"ab\"))\n"
                                          "(check-sat)\n",
                                          {})
                                      .get();
  ASSERT_EQ(cold.status, smtlib::CheckSatStatus::kSat);
  EXPECT_EQ(cold.variable, "x");

  // Same formula, different variable name, reordered assertions.
  const service::JobResult warm = solver
                                      .submit_script(
                                          "(declare-const renamed String)\n"
                                          "(assert (= renamed \"ab\"))\n"
                                          "(check-sat)\n",
                                          {})
                                      .get();
  EXPECT_TRUE(warm.answer_cache_hit);
  EXPECT_EQ(warm.status, smtlib::CheckSatStatus::kSat);
  EXPECT_EQ(warm.variable, "renamed");  // Remapped through the hit script.
  EXPECT_EQ(warm.model_value, cold.model_value);
}

TEST(AnswerCacheServiceTest, UnsatScriptVerdictIsCachedAndServed) {
  auto cache = std::make_shared<canon::AnswerCache>();
  service::SolveService solver(exact_service(cache));

  const std::string unsat_a =
      "(declare-const x String)\n"
      "(assert (= x \"a\"))\n"
      "(assert (= x \"b\"))\n"
      "(check-sat)\n";
  const service::JobResult cold = solver.submit_script(unsat_a, {}).get();
  ASSERT_EQ(cold.status, smtlib::CheckSatStatus::kUnsat);
  EXPECT_FALSE(cold.answer_cache_hit);

  const std::string unsat_b =
      "(declare-const other String)\n"
      "(assert (= other \"b\"))\n"
      "(assert (= other \"a\"))\n"
      "(check-sat)\n";
  const service::JobResult warm = solver.submit_script(unsat_b, {}).get();
  EXPECT_TRUE(warm.answer_cache_hit);
  EXPECT_EQ(warm.status, smtlib::CheckSatStatus::kUnsat);
}

TEST(AnswerCacheServiceTest, PoisonedEntryFallsThroughToColdSolve) {
  auto cache = std::make_shared<canon::AnswerCache>();
  service::SolveService solver(exact_service(cache));

  const strqubo::Constraint constraint = strqubo::Equality{"ab"};
  const strqubo::BuildOptions build;  // Matches ServiceOptions default.
  cache->insert(canon::constraint_answer_key(constraint, build),
                sat_answer("WRONG"));

  const service::JobResult result = solver.submit(constraint, {}).get();
  EXPECT_FALSE(result.answer_cache_hit);
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kSat);
  ASSERT_TRUE(result.text.has_value());
  EXPECT_EQ(*result.text, "ab");  // Verdict identical to an unpoisoned run.

  const service::SolveService::Stats stats = solver.stats();
  EXPECT_EQ(stats.answer_fallbacks, 1u);
  EXPECT_EQ(stats.answer_hits, 0u);
  // The fresh verified verdict replaced the poisoned entry.
  const auto healed =
      cache->lookup(canon::constraint_answer_key(constraint, build));
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(healed->text, "ab");
}

TEST(AnswerCacheServiceTest, UnknownAndTimedOutVerdictsAreNeverInserted) {
  auto cache = std::make_shared<canon::AnswerCache>();
  service::SolveService solver(exact_service(cache));
  service::JobOptions expired;
  expired.deadline = std::chrono::nanoseconds(-1);
  const service::JobResult result =
      solver.submit(strqubo::Equality{"ab"}, expired).get();
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kUnknown);
  EXPECT_FALSE(result.answer_cache_hit);
  EXPECT_EQ(cache->size(), 0u);
  // The expired job skipped the lookup entirely: no miss was charged.
  EXPECT_EQ(solver.stats().answer_misses, 0u);
}

TEST(AnswerCacheServiceTest, PipelinesChainThroughCacheHits) {
  auto cache = std::make_shared<canon::AnswerCache>();
  service::SolveService solver(exact_service(cache));

  const strqubo::Constraint stage = strqubo::Equality{"ab"};
  // Warm the cache, then run a pipeline whose stages all hit.
  ASSERT_EQ(solver.submit(stage, {}).get().status,
            smtlib::CheckSatStatus::kSat);

  service::PipelineJob pipeline;
  pipeline.stages = {stage, stage};
  const service::PipelineResult result =
      solver.submit_pipeline(std::move(pipeline)).get();
  ASSERT_EQ(result.stages.size(), 2u);
  EXPECT_TRUE(result.all_sat);
  EXPECT_TRUE(result.stages[0].answer_cache_hit);
  EXPECT_TRUE(result.stages[1].answer_cache_hit);
  EXPECT_EQ(solver.stats().answer_hits, 2u);
}

TEST(AnswerCacheServiceTest, CacheDisabledWhenNull) {
  service::ServiceOptions options = exact_service(nullptr);
  service::SolveService solver(options);
  const strqubo::Constraint constraint = strqubo::Equality{"ab"};
  ASSERT_EQ(solver.submit(constraint, {}).get().status,
            smtlib::CheckSatStatus::kSat);
  const service::JobResult second = solver.submit(constraint, {}).get();
  EXPECT_FALSE(second.answer_cache_hit);
  EXPECT_EQ(solver.stats().answer_hits, 0u);
  EXPECT_EQ(solver.stats().answer_misses, 0u);
}

// --- Telemetry mirror equality (all four cache layers) ---------------------

class CacheGaugeMirrorTest : public ::testing::Test {
 protected:
  void SetUp() override { telemetry::set_mode(telemetry::Mode::kSummary); }
  void TearDown() override { telemetry::set_mode(telemetry::Mode::kOff); }

  static double gauge_value(const telemetry::Snapshot& snapshot,
                            const std::string& name) {
    const telemetry::GaugeStat* stat = snapshot.gauge(name);
    EXPECT_NE(stat, nullptr) << name;
    return stat == nullptr ? -1.0 : stat->value;
  }
};

TEST_F(CacheGaugeMirrorTest, AnswerAndModelCacheGaugesMirrorStats) {
  auto cache = std::make_shared<canon::AnswerCache>();
  service::SolveService solver(exact_service(cache));
  ASSERT_EQ(solver.submit(strqubo::Equality{"ab"}, {}).get().status,
            smtlib::CheckSatStatus::kSat);
  ASSERT_EQ(solver.submit(strqubo::Reverse{"ba"}, {}).get().status,
            smtlib::CheckSatStatus::kSat);

  const telemetry::Snapshot snapshot = telemetry::registry().snapshot();
  const canon::AnswerCache::Stats cache_stats = cache->stats();
  EXPECT_GT(cache_stats.entries, 0u);
  EXPECT_EQ(gauge_value(snapshot, "answer_cache.entries"),
            static_cast<double>(cache_stats.entries));
  EXPECT_EQ(gauge_value(snapshot, "answer_cache.bytes"),
            static_cast<double>(cache_stats.bytes));
  ASSERT_NE(snapshot.counter("answer_cache.misses"), nullptr);
  EXPECT_EQ(snapshot.counter("answer_cache.misses")->value,
            cache_stats.misses);

  const service::SolveService::Stats service_stats = solver.stats();
  EXPECT_GT(service_stats.model_cache_entries, 0u);
  EXPECT_EQ(gauge_value(snapshot, "service.model_cache.entries"),
            static_cast<double>(service_stats.model_cache_entries));
  EXPECT_EQ(gauge_value(snapshot, "service.model_cache.bytes"),
            static_cast<double>(service_stats.model_cache_bytes));
}

TEST_F(CacheGaugeMirrorTest, FragmentCacheGaugesMirrorStats) {
  smtlib::FragmentCache cache(8);
  const strqubo::BuildOptions options;
  cache.get_or_build(strqubo::Equality{"ab"}, options);
  cache.get_or_build(strqubo::Palindrome{3}, options);

  const telemetry::Snapshot snapshot = telemetry::registry().snapshot();
  const smtlib::FragmentCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_EQ(stats.bytes, cache.bytes());
  const telemetry::GaugeStat* entries =
      snapshot.gauge("incremental.fragment.entries");
  ASSERT_NE(entries, nullptr);
  EXPECT_EQ(entries->value, static_cast<double>(stats.entries));
  const telemetry::GaugeStat* bytes =
      snapshot.gauge("incremental.fragment.bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(bytes->value, static_cast<double>(stats.bytes));
}

TEST_F(CacheGaugeMirrorTest, EmbeddingCacheGaugesMirrorAccessors) {
  graph::Graph logical(3);
  logical.add_edge(0, 1);
  logical.add_edge(1, 2);
  logical.finalize();
  graph::Embedding embedding;
  embedding.chains = {{0}, {1}, {2}};

  graph::EmbeddingCache cache(4);
  cache.insert(logical, embedding);

  const telemetry::Snapshot snapshot = telemetry::registry().snapshot();
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GT(cache.bytes(), 0u);
  const telemetry::GaugeStat* entries = snapshot.gauge("embed.cache.entries");
  ASSERT_NE(entries, nullptr);
  EXPECT_EQ(entries->value, static_cast<double>(cache.size()));
  const telemetry::GaugeStat* bytes = snapshot.gauge("embed.cache.bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(bytes->value, static_cast<double>(cache.bytes()));
}

}  // namespace
}  // namespace qsmt

// Hot-path proofs for the quantum simulation path (docs/hotpath.md, "The
// quantum path"): the PIMC incremental field cache never drifts from a
// direct recompute, fixed-seed PIMC sampling is bit-identical across OpenMP
// thread counts, and the structure-keyed embedding cache serves bit-identical
// embeddings while skipping the embedding search entirely.
#include <gtest/gtest.h>
#include <omp.h>

#include "anneal/pimc.hpp"
#include "graph/chimera.hpp"
#include "graph/embedded_sampler.hpp"
#include "graph/embedding_cache.hpp"
#include "service/service.hpp"
#include "strqubo/builders.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace qsmt {
namespace {

qubo::QuboModel random_model(std::size_t n, Xoshiro256& rng) {
  qubo::QuboModel model(n);
  for (std::size_t i = 0; i < n; ++i)
    model.add_linear(i, rng.uniform() * 2.0 - 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < 0.4)
        model.add_quadratic(i, j, rng.uniform() * 2.0 - 1.0);
    }
  }
  return model;
}

bool same_sample_sets(const anneal::SampleSet& a, const anneal::SampleSet& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k].energy != b[k].energy) return false;
    if (a[k].bits != b[k].bits) return false;
    if (a[k].num_occurrences != b[k].num_occurrences) return false;
  }
  return true;
}

// Kernel-equivalence oracle: after every Γ step of an audited run, every
// cached slice field and every cached slice energy is recomputed directly
// from the adjacency. Any incremental-update bug (wrong sign, missed
// neighbour, stale slice after a global move) shows up as drift far above
// floating-point reassociation noise.
TEST(PimcFieldCache, MatchesDirectRecomputeOnRandomModels) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Xoshiro256 rng(seed, 99);
    const qubo::QuboModel model = random_model(14, rng);
    anneal::PathIntegralParams p;
    p.num_reads = 4;
    p.num_sweeps = 64;
    p.num_slices = 8;
    p.seed = seed;
    EXPECT_LT(anneal::detail::pimc_field_drift(model, p), 1e-9)
        << "field cache drifted for seed " << seed;
  }
}

// Fixed-seed PIMC sampling must be bit-identical regardless of the OpenMP
// thread count: reads own counter-seeded streams with a fixed per-sweep
// uniform consumption rate, so the schedule of reads onto threads must not
// leak into the output.
TEST(PimcDeterminism, IdenticalAcrossThreadCounts) {
  Xoshiro256 rng(7, 3);
  const qubo::QuboModel model = random_model(20, rng);
  anneal::PathIntegralParams p;
  p.num_reads = 8;
  p.num_sweeps = 64;
  p.num_slices = 8;
  p.seed = 11;
  const anneal::PathIntegralAnnealer annealer(p);

  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  const anneal::SampleSet serial = annealer.sample(model);
  omp_set_num_threads(4);
  const anneal::SampleSet parallel = annealer.sample(model);
  omp_set_num_threads(saved);

  EXPECT_TRUE(same_sample_sets(serial, parallel));
}

// find_embedding's attempts run in parallel with an early exit; the winner
// selection is by (total qubits, lowest attempt index), so the embedding for
// a fixed seed must not depend on the thread count either.
TEST(EmbeddingDeterminism, FindEmbeddingIdenticalAcrossThreadCounts) {
  const graph::Graph target = graph::make_chimera(4, 4, 4);
  const graph::Graph logical =
      graph::logical_graph(strqubo::build_palindrome(4));

  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  const auto serial = graph::find_embedding(logical, target, 7, 8);
  omp_set_num_threads(4);
  const auto parallel = graph::find_embedding(logical, target, 7, 8);
  omp_set_num_threads(saved);

  ASSERT_TRUE(serial.has_value());
  ASSERT_TRUE(parallel.has_value());
  EXPECT_EQ(serial->chains, parallel->chains);
}

// A shared cache hands the second sampler the first sampler's embedding,
// bit-identical, and the hit is visible on both the cache accessor and the
// embed.cache.hits telemetry counter. The second solve performs no
// embedding search at all: misses stays at 1.
TEST(EmbeddingCacheSharing, HitReturnsBitIdenticalEmbedding) {
  telemetry::set_mode(telemetry::Mode::kSummary);
  telemetry::reset();

  const graph::Graph target = graph::make_chimera(4, 4, 4);
  auto cache = std::make_shared<graph::EmbeddingCache>();
  graph::EmbeddedSamplerParams params;
  params.anneal.num_reads = 8;
  params.anneal.num_sweeps = 64;
  params.embedding_cache = cache;

  const auto model = strqubo::build_palindrome(3);
  const graph::EmbeddedSampler cold(target, params);
  graph::EmbeddedSampleStats cold_stats;
  (void)cold.sample_with_stats(model, cold_stats);
  EXPECT_EQ(cache->hits(), 0u);
  EXPECT_EQ(cache->misses(), 1u);

  const graph::EmbeddedSampler warm(target, params);
  graph::EmbeddedSampleStats warm_stats;
  (void)warm.sample_with_stats(model, warm_stats);
  EXPECT_EQ(cache->hits(), 1u);
  EXPECT_EQ(cache->misses(), 1u) << "warm solve must skip find_embedding";
  EXPECT_EQ(warm_stats.embedding.chains, cold_stats.embedding.chains);

  const auto snapshot = telemetry::registry().snapshot();
  ASSERT_NE(snapshot.counter("embed.cache.hits"), nullptr);
  EXPECT_EQ(snapshot.counter("embed.cache.hits")->value, 1u);
  ASSERT_NE(snapshot.counter("embed.cache.misses"), nullptr);
  EXPECT_EQ(snapshot.counter("embed.cache.misses")->value, 1u);

  telemetry::reset();
  telemetry::set_mode(telemetry::Mode::kOff);
}

// The service's embedded portfolio lane constructs a fresh sampler per
// attempt; embedded_member must share one cache across them so a
// structurally-identical warm solve skips find_embedding entirely.
TEST(EmbeddingCacheSharing, EmbeddedMemberAttemptsShareOneCache) {
  const graph::Graph target = graph::make_chimera(4, 4, 4);
  graph::EmbeddedSamplerParams base;
  base.anneal.num_reads = 8;
  base.anneal.num_sweeps = 64;
  const service::PortfolioMember member =
      service::embedded_member("embedded", target, base);

  // Two attempts, two samplers — the way the service retries with reseeds.
  const auto first = member.make(1, CancelToken());
  const auto second = member.make(2, CancelToken());
  const auto model = strqubo::build_palindrome(3);
  (void)first->sample(model);
  (void)second->sample(model);

  const auto* warm = dynamic_cast<const graph::EmbeddedSampler*>(second.get());
  ASSERT_NE(warm, nullptr);
  EXPECT_EQ(warm->embedding_cache()->misses(), 1u)
      << "second attempt repeated the embedding search";
  EXPECT_EQ(warm->embedding_cache()->hits(), 1u);
}

// LRU bound: capacity + 1 distinct shapes evict the oldest, and a re-solve
// of the evicted shape misses again.
TEST(EmbeddingCacheLru, EvictsLeastRecentlyUsedShape) {
  graph::EmbeddingCache cache(2);
  const graph::Graph target = graph::make_chimera(4, 4, 4);
  const auto shape = [](std::size_t len) {
    return graph::logical_graph(strqubo::build_palindrome(len));
  };
  const graph::Embedding dummy{
      {{0}}};  // Contents irrelevant; the cache stores it opaquely.
  cache.insert(shape(3), dummy);
  cache.insert(shape(4), dummy);
  EXPECT_TRUE(cache.lookup(shape(3)).has_value());  // 3 now most recent.
  cache.insert(shape(5), dummy);                    // Evicts 4.
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.lookup(shape(4)).has_value());
  EXPECT_TRUE(cache.lookup(shape(3)).has_value());
  EXPECT_TRUE(cache.lookup(shape(5)).has_value());
}

TEST(StructureHash, DistinguishesShapesAndIgnoresCoefficients) {
  const auto a = graph::logical_graph(strqubo::build_palindrome(3));
  const auto b = graph::logical_graph(strqubo::build_palindrome(4));
  EXPECT_NE(graph::structure_hash(a), graph::structure_hash(b));
  // Two palindromes of one length differ only in coefficients upstream; the
  // logical graphs are identical and must hash identically.
  const auto a2 = graph::logical_graph(strqubo::build_palindrome(3));
  EXPECT_EQ(graph::structure_hash(a), graph::structure_hash(a2));
}

}  // namespace
}  // namespace qsmt

// The umbrella header must compile standalone and expose the whole API.
#include "qsmt.hpp"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaHeader, ExposesTheWholeApi) {
  // One symbol per module proves the includes resolved.
  qsmt::Xoshiro256 rng(1);
  (void)rng();
  qsmt::qubo::QuboModel model(2);
  model.add_linear(0, -1.0);
  const qsmt::anneal::ExactSolver exact;
  EXPECT_DOUBLE_EQ(exact.ground_energy(model), -1.0);
  EXPECT_EQ(qsmt::graph::make_complete(3).num_edges(), 3u);
  EXPECT_EQ(qsmt::strenc::encode_char('a')[0], 1);
  EXPECT_TRUE(qsmt::regex::full_match("a+", "aa"));
  EXPECT_EQ(qsmt::strqubo::constraint_name(qsmt::strqubo::Equality{"x"}),
            "equality");
  EXPECT_EQ(qsmt::smtlib::status_name(qsmt::smtlib::CheckSatStatus::kSat),
            "sat");
  qsmt::sat::CdclSolver sat_solver;
  EXPECT_EQ(sat_solver.solve(), qsmt::sat::SolveStatus::kSat);
  EXPECT_TRUE(qsmt::baseline::DirectBaseline()
                  .solve(qsmt::strqubo::Equality{"ok"})
                  .satisfied);
  qsmt::workload::Generator generator;
  (void)generator.next();
  EXPECT_FALSE(qsmt::engine::term_needs_boolean_engine(nullptr));
}

}  // namespace

#include <gtest/gtest.h>

#include "anneal/simulated_annealer.hpp"
#include "engine/engine.hpp"
#include "smtlib/parser.hpp"

namespace qsmt::engine {
namespace {

anneal::SimulatedAnnealer fast_annealer(std::uint64_t seed) {
  anneal::SimulatedAnnealerParams p;
  p.num_reads = 48;
  p.num_sweeps = 256;
  p.seed = seed;
  return anneal::SimulatedAnnealer(p);
}

smtlib::TermPtr term(const std::string& text) {
  return smtlib::parse_term(smtlib::parse_sexprs(text).at(0));
}

TEST(NeedsBooleanEngine, TermLevel) {
  EXPECT_TRUE(term_needs_boolean_engine(term("(or (= x \"a\") (= x \"b\"))")));
  EXPECT_TRUE(term_needs_boolean_engine(term("(not (= x \"a\"))")));
  EXPECT_TRUE(term_needs_boolean_engine(
      term("(and (= x \"a\") (or (= x \"b\") (= x \"c\")))")));
  // The one supported negation stays conjunctive.
  EXPECT_FALSE(term_needs_boolean_engine(term("(not (str.contains x \"a\"))")));
  EXPECT_FALSE(term_needs_boolean_engine(term("(= x \"a\")")));
  EXPECT_FALSE(term_needs_boolean_engine(term("(str.contains x \"a\")")));
}

TEST(NeedsBooleanEngine, CommandLevel) {
  EXPECT_TRUE(needs_boolean_engine(smtlib::parse_script(
      "(declare-const x String)(assert (or (= x \"a\") (= x \"b\")))")));
  EXPECT_FALSE(needs_boolean_engine(smtlib::parse_script(
      "(declare-const x String)(assert (= x \"a\"))(check-sat)")));
}

TEST(SolveScript, ConjunctiveRoute) {
  const auto annealer = fast_annealer(1);
  const ScriptResult result = solve_script(R"(
    (declare-const x String)
    (assert (= x "eng"))
    (check-sat)
    (get-model)
  )",
                                           annealer);
  EXPECT_EQ(result.engine, EngineKind::kConjunctive);
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kSat);
  EXPECT_EQ(result.model_value, "eng");
  EXPECT_NE(result.transcript.find("sat\n"), std::string::npos);
  EXPECT_NE(result.transcript.find("\"eng\""), std::string::npos);
}

TEST(SolveScript, CertifiedUnsatOnConjunctiveRoute) {
  const auto annealer = fast_annealer(9);
  const ScriptResult result = solve_script(R"(
    (declare-const x String)
    (assert (= x "ab"))
    (assert (= x "xyz"))
    (check-sat)
  )",
                                           annealer);
  EXPECT_EQ(result.engine, EngineKind::kConjunctive);
  // The length conflict is a certified refutation: the engine must report
  // kUnsat, not degrade to kUnknown.
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kUnsat);
  EXPECT_NE(result.transcript.find("unsat\n"), std::string::npos);
}

TEST(SolveScript, AutoRoutesDisjunctionsToDpllT) {
  const auto annealer = fast_annealer(2);
  const ScriptResult result = solve_script(R"(
    (declare-const x String)
    (assert (or (= x "cat") (= x "dog")))
    (assert (not (= x "cat")))
  )",
                                           annealer);
  EXPECT_EQ(result.engine, EngineKind::kDpllT);
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kSat);
  EXPECT_EQ(result.model_value, "dog");
}

TEST(SolveScript, ForceDpllTOnConjunctiveScript) {
  const auto annealer = fast_annealer(3);
  const ScriptResult result = solve_script(R"(
    (declare-const x String)
    (assert (= x "forced"))
  )",
                                           annealer, {}, /*force_dpllt=*/true);
  EXPECT_EQ(result.engine, EngineKind::kDpllT);
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kSat);
  EXPECT_EQ(result.model_value, "forced");
}

TEST(SolveScript, NotContainsStaysConjunctive) {
  const auto annealer = fast_annealer(4);
  const ScriptResult result = solve_script(R"(
    (declare-const x String)
    (assert (= (str.len x) 4))
    (assert (not (str.contains x "zz")))
    (check-sat)
  )",
                                           annealer);
  EXPECT_EQ(result.engine, EngineKind::kConjunctive);
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kSat);
}

TEST(SolveScript, GroundUnsat) {
  const auto annealer = fast_annealer(5);
  const ScriptResult result =
      solve_script("(assert (= \"a\" \"b\"))(check-sat)", annealer);
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kUnsat);
}

TEST(SolveScript, DpllTUnsat) {
  const auto annealer = fast_annealer(6);
  const ScriptResult result = solve_script(R"(
    (declare-const x String)
    (assert (= x "a"))
    (assert (not (= x "a")))
  )",
                                           annealer);
  EXPECT_EQ(result.engine, EngineKind::kDpllT);
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kUnsat);
}

TEST(SolveScript, ParseErrorsPropagate) {
  const auto annealer = fast_annealer(7);
  EXPECT_THROW(solve_script("(assert", annealer), std::invalid_argument);
}

TEST(SolveScript, ConjunctiveWithoutCheckSatIsUnknown) {
  const auto annealer = fast_annealer(8);
  const ScriptResult result =
      solve_script("(declare-const x String)(assert (= x \"a\"))", annealer);
  // No (check-sat) command: nothing was decided.
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kUnknown);
  EXPECT_TRUE(result.transcript.empty());
}

}  // namespace
}  // namespace qsmt::engine

#include <gtest/gtest.h>

#include <omp.h>

#include "anneal/exact.hpp"
#include "anneal/simulated_annealer.hpp"
#include "util/rng.hpp"

namespace qsmt::anneal {
namespace {

qubo::QuboModel random_model(std::size_t n, double density, Xoshiro256& rng) {
  qubo::QuboModel model(n);
  for (std::size_t i = 0; i < n; ++i)
    model.add_linear(i, rng.uniform() * 2.0 - 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < density)
        model.add_quadratic(i, j, rng.uniform() * 2.0 - 1.0);
    }
  }
  return model;
}

SimulatedAnnealerParams fast_params(std::uint64_t seed) {
  SimulatedAnnealerParams p;
  p.num_reads = 32;
  p.num_sweeps = 128;
  p.seed = seed;
  return p;
}

TEST(SimulatedAnnealer, RejectsInvalidParams) {
  SimulatedAnnealerParams p;
  p.num_reads = 0;
  EXPECT_THROW(SimulatedAnnealer{p}, std::invalid_argument);
  p.num_reads = 1;
  p.num_sweeps = 0;
  EXPECT_THROW(SimulatedAnnealer{p}, std::invalid_argument);
}

TEST(SimulatedAnnealer, SolvesDiagonalModelExactly) {
  // Diagonal models (the paper's equality encoding) have independent bits;
  // every read should land on the unique ground state.
  qubo::QuboModel model(20);
  for (std::size_t i = 0; i < 20; ++i) {
    model.add_linear(i, i % 2 == 0 ? -1.0 : 1.0);
  }
  const SimulatedAnnealer annealer(fast_params(1));
  const SampleSet samples = annealer.sample(model);
  const Sample& best = samples.best();
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(best.bits[i], i % 2 == 0 ? 1 : 0);
  }
  EXPECT_DOUBLE_EQ(best.energy, -10.0);
  EXPECT_DOUBLE_EQ(samples.success_fraction(-10.0), 1.0);
}

class AnnealerVsExact : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnnealerVsExact, FindsGroundStateOfRandomModels) {
  Xoshiro256 rng(GetParam());
  const auto model = random_model(14, 0.4, rng);
  const ExactSolver exact;
  const double ground = exact.ground_energy(model);

  const SimulatedAnnealer annealer(fast_params(GetParam() * 7 + 1));
  const SampleSet samples = annealer.sample(model);
  EXPECT_NEAR(samples.lowest_energy(), ground, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnnealerVsExact,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(SimulatedAnnealer, DeterministicForFixedSeed) {
  Xoshiro256 rng(77);
  const auto model = random_model(16, 0.3, rng);
  const SimulatedAnnealer annealer(fast_params(123));
  const SampleSet a = annealer.sample(model);
  const SampleSet b = annealer.sample(model);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bits, b[i].bits);
    EXPECT_DOUBLE_EQ(a[i].energy, b[i].energy);
    EXPECT_EQ(a[i].num_occurrences, b[i].num_occurrences);
  }
}

TEST(SimulatedAnnealer, ResultIndependentOfThreadCount) {
  Xoshiro256 rng(88);
  const auto model = random_model(12, 0.5, rng);
  const SimulatedAnnealer annealer(fast_params(9));

  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  const SampleSet serial = annealer.sample(model);
  omp_set_num_threads(4);
  const SampleSet parallel = annealer.sample(model);
  omp_set_num_threads(saved);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].bits, parallel[i].bits);
    EXPECT_EQ(serial[i].num_occurrences, parallel[i].num_occurrences);
  }
}

TEST(SimulatedAnnealer, ReportsRequestedNumberOfReads) {
  qubo::QuboModel model(4);
  model.add_linear(0, -1.0);
  SimulatedAnnealerParams p = fast_params(3);
  p.num_reads = 17;
  const SimulatedAnnealer annealer(p);
  EXPECT_EQ(annealer.sample(model).total_reads(), 17u);
}

TEST(SimulatedAnnealer, GreedyPolishNeverWorsensBest) {
  Xoshiro256 rng(5);
  const auto model = random_model(12, 0.5, rng);

  SimulatedAnnealerParams with = fast_params(11);
  SimulatedAnnealerParams without = fast_params(11);
  without.polish_with_greedy = false;

  const double best_with = SimulatedAnnealer(with).sample(model).lowest_energy();
  const double best_without =
      SimulatedAnnealer(without).sample(model).lowest_energy();
  EXPECT_LE(best_with, best_without + 1e-12);
}

TEST(SimulatedAnnealer, ExplicitBetaRangeIsHonoured) {
  // With a frozen (very cold) schedule and no greedy polish the sampler
  // cannot escape its random initialisation — a smoke check that the beta
  // overrides are actually wired through.
  qubo::QuboModel model(8);
  for (std::size_t i = 0; i < 8; ++i) model.add_linear(i, -1.0);

  SimulatedAnnealerParams hot = fast_params(4);
  hot.beta_hot = 1e-6;
  hot.beta_cold = 1e-6;
  hot.num_sweeps = 4;
  hot.polish_with_greedy = false;
  const SampleSet samples = SimulatedAnnealer(hot).sample(model);
  // At essentially infinite temperature acceptance is ~50/50, so the chance
  // that all 32 reads all land on all-ones is astronomically small.
  EXPECT_LT(samples.success_fraction(-8.0), 1.0);
}

TEST(SimulatedAnnealer, EmptyModelYieldsEmptyBits) {
  qubo::QuboModel model;
  const SimulatedAnnealer annealer(fast_params(0));
  const SampleSet samples = annealer.sample(model);
  ASSERT_FALSE(samples.empty());
  EXPECT_TRUE(samples.best().bits.empty());
  EXPECT_DOUBLE_EQ(samples.best().energy, 0.0);
}

TEST(SimulatedAnnealer, NameIsStable) {
  EXPECT_EQ(SimulatedAnnealer(fast_params(0)).name(), "simulated-annealing");
}

}  // namespace
}  // namespace qsmt::anneal

#include <gtest/gtest.h>

#include "graph/chimera.hpp"
#include "graph/embedding.hpp"

namespace qsmt::graph {
namespace {

Graph complete_graph(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) g.add_edge(i, j);
  }
  g.finalize();
  return g;
}

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  g.finalize();
  return g;
}

TEST(LogicalGraph, BuildsFromQuadraticTerms) {
  qubo::QuboModel model(4);
  model.add_linear(0, -1.0);  // Linear terms contribute no edges.
  model.add_quadratic(0, 1, 1.0);
  model.add_quadratic(2, 3, -2.0);
  const Graph g = logical_graph(model);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(LogicalGraph, IgnoresZeroCoefficients) {
  qubo::QuboModel model(3);
  model.add_quadratic(0, 1, 1.0);
  model.add_quadratic(0, 1, -1.0);
  EXPECT_EQ(logical_graph(model).num_edges(), 0u);
}

TEST(Embedding, Accounting) {
  Embedding e;
  e.chains = {{0, 1}, {2}, {3, 4, 5}};
  EXPECT_EQ(e.num_logical(), 3u);
  EXPECT_EQ(e.total_physical(), 6u);
  EXPECT_EQ(e.max_chain_length(), 3u);
}

TEST(Embedding, ValidityChecks) {
  const Graph logical = path_graph(2);
  const Graph target = path_graph(4);

  Embedding good;
  good.chains = {{0}, {1}};
  EXPECT_TRUE(good.is_valid(logical, target));

  Embedding chains_touching_required;
  chains_touching_required.chains = {{0}, {2}};  // 0-2 not adjacent.
  EXPECT_FALSE(chains_touching_required.is_valid(logical, target));

  Embedding overlapping;
  overlapping.chains = {{0, 1}, {1}};
  EXPECT_FALSE(overlapping.is_valid(logical, target));

  Embedding disconnected_chain;
  disconnected_chain.chains = {{0, 2}, {1}};  // {0,2} not connected w/o 1.
  EXPECT_FALSE(disconnected_chain.is_valid(logical, target));

  Embedding empty_chain;
  empty_chain.chains = {{0}, {}};
  EXPECT_FALSE(empty_chain.is_valid(logical, target));

  Embedding out_of_range;
  out_of_range.chains = {{0}, {9}};
  EXPECT_FALSE(out_of_range.is_valid(logical, target));
}

TEST(FindEmbedding, IdentityWhenLogicalFitsDirectly) {
  const Graph logical = path_graph(3);
  const Graph target = path_graph(10);
  const auto embedding = find_embedding(logical, target, 1);
  ASSERT_TRUE(embedding.has_value());
  EXPECT_TRUE(embedding->is_valid(logical, target));
}

TEST(FindEmbedding, EdgelessProblemNeedsOneQubitPerVariable) {
  // Diagonal-only QUBOs (most of the paper's formulations) embed trivially.
  Graph logical(5);
  logical.finalize();
  const Graph target = make_chimera(1, 1, 4);
  const auto embedding = find_embedding(logical, target, 0);
  ASSERT_TRUE(embedding.has_value());
  EXPECT_EQ(embedding->total_physical(), 5u);
  EXPECT_EQ(embedding->max_chain_length(), 1u);
}

class CompleteGraphEmbedding : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CompleteGraphEmbedding, EmbedsIntoChimera) {
  // K_n for n <= 2t+1 embeds into a Chimera block with short chains; the
  // classic result is K_{4t+1} into C(t,t,t) — we stay well inside that.
  const std::size_t n = GetParam();
  const Graph logical = complete_graph(n);
  const Graph target = make_chimera(4, 4, 4);
  const auto embedding = find_embedding(logical, target, 7, 8);
  ASSERT_TRUE(embedding.has_value()) << "K_" << n;
  EXPECT_TRUE(embedding->is_valid(logical, target)) << "K_" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompleteGraphEmbedding,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u));

TEST(FindEmbedding, FailsWhenTargetTooSmall) {
  const Graph logical = complete_graph(5);
  const Graph target = path_graph(4);  // K5 cannot minor-embed into P4.
  EXPECT_FALSE(find_embedding(logical, target, 0, 8).has_value());
}

TEST(FindEmbedding, DeterministicForFixedSeed) {
  const Graph logical = complete_graph(4);
  const Graph target = make_chimera(2, 2, 4);
  const auto a = find_embedding(logical, target, 5);
  const auto b = find_embedding(logical, target, 5);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->chains, b->chains);
}

TEST(FindEmbedding, RequiresFinalizedGraphs) {
  Graph unfinished(3);
  unfinished.add_edge(0, 1);
  const Graph target = path_graph(4);
  EXPECT_THROW(find_embedding(unfinished, target), std::invalid_argument);
}

TEST(FindEmbedding, PalindromeShapedProblemEmbeds) {
  // The palindrome QUBO couples bit i with bit 7(n-1-j)+i — a perfect
  // matching. Chains stay short on Chimera.
  qubo::QuboModel model(14);
  for (std::size_t b = 0; b < 7; ++b) {
    model.add_quadratic(b, 7 + b, -2.0);
  }
  const Graph logical = logical_graph(model);
  const Graph target = make_chimera(2, 2, 4);
  const auto embedding = find_embedding(logical, target, 1);
  ASSERT_TRUE(embedding.has_value());
  EXPECT_TRUE(embedding->is_valid(logical, target));
  EXPECT_LE(embedding->max_chain_length(), 3u);
}

}  // namespace
}  // namespace qsmt::graph

// qsmt::service — worker pool, portfolio racing, cancellation, deadlines.
//
// The stress tests drive the service from several submitter threads at once
// with mixed deadlines and check the accounting invariants a job queue must
// keep under contention: every future resolves, no result is lost or
// duplicated, tags round-trip, expired deadlines become graceful kUnknown
// timeouts, and losing portfolio members actually observe their cancel
// token. The suite is part of the sanitizer matrix (scripts/ci.sh), so the
// same schedules run under ASan and UBSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "anneal/simulated_annealer.hpp"
#include "qubo/qubo_model.hpp"
#include "service/service.hpp"
#include "smtlib/driver.hpp"
#include "strqubo/constraint.hpp"
#include "util/cancel.hpp"
#include "util/stopwatch.hpp"

namespace qsmt {
namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;

// A QUBO big enough that a high-budget anneal takes seconds — the workload
// the cancellation tests must be able to abort in well under that.
qubo::QuboModel chain_model(std::size_t n) {
  qubo::QuboModel model(n);
  for (std::size_t i = 0; i < n; ++i) model.add_linear(i, i % 2 ? 1.0 : -1.0);
  for (std::size_t i = 0; i + 1 < n; ++i) model.add_quadratic(i, i + 1, 0.5);
  return model;
}

TEST(Cancel, DefaultTokenNeverCancels) {
  const CancelToken token;
  EXPECT_FALSE(token.cancellable());
  EXPECT_FALSE(token.cancelled());
}

TEST(Cancel, SourceCancelIsVisibleToToken) {
  CancelSource source;
  const CancelToken token = source.token();
  EXPECT_TRUE(token.cancellable());
  EXPECT_FALSE(token.cancelled());
  source.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(source.cancel_requested());
}

TEST(Cancel, DeadlineExpiryLatches) {
  CancelSource source;
  source.set_deadline_after(nanoseconds(1));
  const CancelToken token = source.token();
  std::this_thread::sleep_for(milliseconds(1));
  EXPECT_TRUE(token.cancelled());
  // Latched: still cancelled on every later poll.
  EXPECT_TRUE(token.cancelled());
}

TEST(Cancel, PreCancelledTokenAbortsSampleFast) {
  CancelSource source;
  source.cancel();
  anneal::SimulatedAnnealerParams params;
  params.num_reads = 4;
  params.num_sweeps = 200000;  // Minutes of work if the token were ignored.
  params.seed = 3;
  params.cancel = source.token();
  const anneal::SimulatedAnnealer annealer(params);

  Stopwatch timer;
  const anneal::SampleSet samples = annealer.sample(chain_model(256));
  EXPECT_LT(timer.elapsed_seconds(), 5.0);
  // A cancelled sample is still a well-formed SampleSet.
  ASSERT_FALSE(samples.empty());
  for (const anneal::Sample& sample : samples) {
    EXPECT_EQ(sample.bits.size(), 256u);
  }
}

TEST(Cancel, DeadlineAbortsLongSampleMidFlight) {
  CancelSource source;
  source.set_deadline_after(milliseconds(50));
  anneal::SimulatedAnnealerParams params;
  params.num_reads = 4;
  params.num_sweeps = 200000;
  params.seed = 5;
  params.early_exit = false;  // Only the deadline can stop the sweeps.
  params.cancel = source.token();
  const anneal::SimulatedAnnealer annealer(params);

  Stopwatch timer;
  const anneal::SampleSet samples = annealer.sample(chain_model(256));
  // One sweep of slack past the deadline, not the full budget.
  EXPECT_LT(timer.elapsed_seconds(), 5.0);
  ASSERT_FALSE(samples.empty());
}

TEST(Service, SolvesEasyConstraintAndReportsWinner) {
  service::SolveService service;
  service::JobResult result =
      service.submit(strqubo::Equality{"abc"}).get();
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kSat);
  ASSERT_TRUE(result.text.has_value());
  EXPECT_EQ(*result.text, "abc");
  EXPECT_FALSE(result.winner.empty());
  EXPECT_GE(result.attempts, 1u);
  EXPECT_GE(result.solve_seconds, 0.0);
}

TEST(Service, WarmStartFromExactWitnessDecidesJob) {
  // Single-member portfolio: no sibling can cold-solve the tiny model
  // before the warm refinement claims, so the hit is deterministic.
  service::ServiceOptions options;
  options.portfolio = {service::simulated_annealing_member("sa")};
  service::SolveService service(options);
  service::JobOptions job;
  // The warm-start seed IS the (unique) solution: the reverse-anneal
  // refinement starts on it, verification passes, and the job is decided
  // warm — visible in the stats and in the result note.
  job.warm_start = "warm";
  const service::JobResult result =
      service.submit(strqubo::Equality{"warm"}, job).get();
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kSat);
  ASSERT_TRUE(result.text.has_value());
  EXPECT_EQ(*result.text, "warm");
  const service::SolveService::Stats stats = service.stats();
  EXPECT_EQ(stats.warm_starts, 1u);
  EXPECT_EQ(stats.warm_hits, 1u);
  bool noted = false;
  for (const std::string& note : result.notes) noted |= note == "warm start";
  EXPECT_TRUE(noted);
}

TEST(Service, StaleWarmStartFallsBackCold) {
  service::SolveService service;
  service::JobOptions job;
  // Wrong length: the encoded witness no longer type-checks against the
  // model, so the refinement is skipped entirely and the cold race still
  // solves the job.
  job.warm_start = "far-too-long-for-this-model";
  const service::JobResult result =
      service.submit(strqubo::Equality{"ab"}, job).get();
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kSat);
  ASSERT_TRUE(result.text.has_value());
  EXPECT_EQ(*result.text, "ab");
  const service::SolveService::Stats stats = service.stats();
  EXPECT_EQ(stats.warm_starts, 0u);
  EXPECT_EQ(stats.warm_hits, 0u);
}

TEST(Service, WrongWarmStartStillVerifiesBeforeWinning) {
  service::SolveService service;
  service::JobOptions job;
  // Same length, wrong content: the refinement runs but its answer must
  // pass classical verification, so a misleading seed can never corrupt
  // the verdict — worst case the cold path pays the full solve.
  job.warm_start = "xx";
  const service::JobResult result =
      service.submit(strqubo::Equality{"ab"}, job).get();
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kSat);
  ASSERT_TRUE(result.text.has_value());
  EXPECT_EQ(*result.text, "ab");
  EXPECT_EQ(service.stats().warm_starts, 1u);
}

TEST(Service, ScriptJobsPropagateCertifiedUnsat) {
  service::SolveService service;
  const service::JobResult result =
      service
          .submit_script(
              "(declare-const x String)"
              "(assert (= x \"ab\"))"
              "(assert (= x \"cd\"))"
              "(check-sat)")
          .get();
  // Any portfolio member's certified refutation must claim the race: a
  // provably-unsatisfiable script resolves kUnsat, never kUnknown.
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kUnsat);
  EXPECT_FALSE(result.winner.empty());
}

TEST(Service, SolvesScriptJobs) {
  service::SolveService service;
  service::JobResult result = service
                                  .submit_script(
                                      "(declare-const x String)"
                                      "(assert (= x \"hi\"))"
                                      "(check-sat)(get-model)")
                                  .get();
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kSat);
  EXPECT_EQ(result.variable, "x");
  EXPECT_EQ(result.model_value, "hi");
}

TEST(Service, ScriptParseErrorResolvesUnknownWithNote) {
  service::SolveService service;
  const service::JobResult result =
      service.submit_script("(assert (= x").get();
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kUnknown);
  ASSERT_FALSE(result.notes.empty());
  EXPECT_NE(result.notes[0].find("parse error"), std::string::npos);
}

TEST(Service, LosingMemberObservesCancellation) {
  // sa-fast wins the race on a trivial constraint; sa-deep must then see
  // the shared token and be counted as cancelled — on a single worker it
  // is cancelled before it even starts, on many workers mid-sweep. The
  // winner fulfils the future before the loser necessarily runs, so the
  // observation shows up in the service-wide stats, not the JobResult;
  // on one FIFO worker the loser is guaranteed to have run by the time a
  // second job resolves.
  service::ServiceOptions options;
  options.num_workers = 1;
  service::SolveService service(options);
  const service::JobResult result =
      service.submit(strqubo::Equality{"ab"}).get();
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kSat);
  service.submit(strqubo::Equality{"cd"}).get();
  EXPECT_GE(service.stats().members_cancelled, 1u);
}

TEST(Service, ExpiredDeadlineTimesOutGracefully) {
  service::SolveService service;
  service::JobOptions job;
  job.deadline = nanoseconds(1);
  const service::JobResult result =
      service.submit(strqubo::Equality{"abcde"}, job).get();
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kUnknown);
  EXPECT_TRUE(result.timed_out);
  EXPECT_EQ(service.stats().jobs_timed_out, 1u);
}

TEST(Service, DefaultDeadlineAppliesToEveryJob) {
  service::ServiceOptions options;
  options.default_deadline = nanoseconds(1);
  service::SolveService service(options);
  const service::JobResult result =
      service.submit(strqubo::Equality{"abc"}).get();
  EXPECT_TRUE(result.timed_out);
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kUnknown);
}

// Sampler that always throws from sample() — the shape of an
// EmbeddedSampler that cannot embed the model onto its target topology.
// A worker thread must absorb this, not std::terminate the process.
class ThrowingSampler : public anneal::Sampler {
 public:
  anneal::SampleSet sample(const qubo::QuboModel&) const override {
    throw std::runtime_error("could not embed model onto target topology");
  }
  std::string name() const override { return "throwing"; }
};

// Sampler that completes instantly but only ever produces an assignment
// that fails classical verification — exercises the attempt-exhaustion
// path without any member being cut short.
class GarbageSampler : public anneal::Sampler {
 public:
  explicit GarbageSampler(milliseconds delay = milliseconds(0))
      : delay_(delay) {}
  anneal::SampleSet sample(const qubo::QuboModel& model) const override {
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    anneal::SampleSet set;
    set.add(std::vector<std::uint8_t>(model.num_variables(), 0), 0.0);
    return set;
  }
  std::string name() const override { return "garbage"; }

 private:
  milliseconds delay_;
};

template <typename SamplerT, typename... Args>
service::PortfolioMember member_of(std::string name, Args... args) {
  service::PortfolioMember member;
  member.name = std::move(name);
  member.make = [args...](std::uint64_t, CancelToken) {
    return std::make_unique<SamplerT>(args...);
  };
  return member;
}

TEST(Service, ThrowingMemberLosesRaceWithoutKillingService) {
  // One FIFO worker with the thrower queued first: it deterministically
  // runs (and throws) before the SA lane gets a chance to win.
  service::ServiceOptions options;
  options.num_workers = 1;
  options.portfolio.push_back(member_of<ThrowingSampler>("thrower"));
  options.portfolio.push_back(service::simulated_annealing_member("sa"));
  service::SolveService service(options);

  const service::JobResult result =
      service.submit(strqubo::Equality{"ab"}).get();
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kSat);
  EXPECT_EQ(result.winner, "sa");
  EXPECT_GE(service.stats().member_errors, 1u);

  // The pool survived the exception and keeps serving.
  const service::JobResult again =
      service.submit(strqubo::Equality{"cd"}).get();
  EXPECT_EQ(again.status, smtlib::CheckSatStatus::kSat);
}

TEST(Service, AllMembersThrowingResolvesUnknownWithErrorNote) {
  service::ServiceOptions options;
  options.portfolio.push_back(member_of<ThrowingSampler>("thrower"));
  service::SolveService service(options);

  const service::JobResult result =
      service.submit(strqubo::Equality{"ab"}).get();
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kUnknown);
  EXPECT_FALSE(result.timed_out);
  const auto mentions_failure = [&](const std::string& note) {
    return note.find("thrower") != std::string::npos &&
           note.find("failed") != std::string::npos;
  };
  EXPECT_TRUE(std::any_of(result.notes.begin(), result.notes.end(),
                          mentions_failure));

  // Script jobs route sampler exceptions through the same guard.
  const service::JobResult script_result =
      service
          .submit_script(
              "(declare-const x String)"
              "(assert (= x \"hi\"))"
              "(check-sat)")
          .get();
  EXPECT_EQ(script_result.status, smtlib::CheckSatStatus::kUnknown);
  EXPECT_TRUE(std::any_of(script_result.notes.begin(),
                          script_result.notes.end(), mentions_failure));
  EXPECT_GE(service.stats().member_errors, 2u);
}

TEST(Service, ExhaustedAttemptsWithPendingDeadlineIsNotTimeout) {
  // Every attempt completes and merely fails verification; the deadline is
  // nowhere near expiring. The verdict is kUnknown-exhausted, not timeout.
  service::ServiceOptions options;
  options.num_workers = 1;
  options.max_verify_retries = 1;
  options.portfolio.push_back(member_of<GarbageSampler>("garbage"));
  service::SolveService service(options);

  service::JobOptions job;
  job.deadline = std::chrono::hours(1);
  const service::JobResult result =
      service.submit(strqubo::Equality{"ab"}, job).get();
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kUnknown);
  EXPECT_FALSE(result.timed_out);
  ASSERT_FALSE(result.notes.empty());
  EXPECT_NE(result.notes[0].find("no portfolio member"), std::string::npos);
  EXPECT_EQ(service.stats().jobs_timed_out, 0u);
}

TEST(Service, DeadlineExpiringMidAttemptIsTimeout) {
  // The sampler holds the worker past the deadline (ignoring the token, as
  // a worst-case member would) — the job was genuinely cut short mid-work.
  service::ServiceOptions options;
  options.num_workers = 1;
  options.max_verify_retries = 0;
  options.portfolio.push_back(
      member_of<GarbageSampler>("slow-garbage", milliseconds(100)));
  service::SolveService service(options);

  service::JobOptions job;
  job.deadline = milliseconds(5);
  const service::JobResult result =
      service.submit(strqubo::Equality{"ab"}, job).get();
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kUnknown);
  EXPECT_TRUE(result.timed_out);
  EXPECT_EQ(service.stats().jobs_timed_out, 1u);
}

TEST(Service, ModelCacheSharesPreparedConstraints) {
  service::ServiceOptions options;
  options.num_workers = 1;
  service::SolveService service(options);
  const strqubo::Constraint constraint = strqubo::Equality{"abcd"};
  service.submit(constraint).get();
  service.submit(constraint).get();
  const service::SolveService::Stats stats = service.stats();
  EXPECT_GE(stats.model_cache_hits, 1u);
  EXPECT_GE(stats.model_cache_misses, 1u);
}

TEST(Service, DestructorResolvesQueuedJobs) {
  std::vector<std::future<service::JobResult>> futures;
  {
    service::ServiceOptions options;
    options.num_workers = 1;
    service::SolveService service(options);
    for (int i = 0; i < 16; ++i) {
      futures.push_back(service.submit(strqubo::Palindrome{6}));
    }
    // Destroyed with most jobs still queued.
  }
  for (auto& future : futures) {
    const service::JobResult result = future.get();  // Must not hang.
    if (result.status == smtlib::CheckSatStatus::kUnknown) {
      ASSERT_FALSE(result.notes.empty());
    }
  }
}

// Cross-job fusion. A "gate" member (index 0) blocks the single worker
// inside its sampler factory until released, then throws. While the worker
// is parked on job 1's gate task, the test queues more jobs that share
// job 1's structure key; on release the worker reaches job 1's batchable SA
// task with every sibling SA task still queued behind it, so the fusion
// scan deterministically sweeps them all into ONE kernel invocation.
struct GateState {
  std::atomic<int> calls{0};
  std::atomic<bool> released{false};

  void wait_until_entered() const {
    while (calls.load() == 0) std::this_thread::sleep_for(milliseconds(1));
  }
  void release() { released.store(true); }
};

service::PortfolioMember gate_member(std::shared_ptr<GateState> state) {
  service::PortfolioMember member;
  member.name = "gate";
  member.make = [state](std::uint64_t,
                        CancelToken) -> std::unique_ptr<anneal::Sampler> {
    if (state->calls.fetch_add(1) == 0) {
      while (!state->released.load()) {
        std::this_thread::sleep_for(milliseconds(1));
      }
    }
    throw std::runtime_error("gate");
  };
  return member;
}

TEST(ServiceStress, FusedJobsAccountedAndCompletedExactlyOnce) {
  constexpr std::size_t kJobs = 6;
  auto gate = std::make_shared<GateState>();
  service::ServiceOptions options;
  options.num_workers = 1;
  options.max_verify_retries = 0;
  options.max_fused_jobs = 16;
  options.portfolio.push_back(gate_member(gate));
  options.portfolio.push_back(service::simulated_annealing_member("sa"));
  service::SolveService service(options);

  std::vector<std::future<service::JobResult>> futures;
  service::JobOptions job;
  job.seed = 1;
  futures.push_back(service.submit(strqubo::Equality{"abc"}, job));
  gate->wait_until_entered();
  for (std::size_t j = 1; j < kJobs; ++j) {
    job.seed = j + 1;
    futures.push_back(service.submit(strqubo::Equality{"abc"}, job));
  }
  gate->release();

  for (std::size_t j = 0; j < kJobs; ++j) {
    const service::JobResult result = futures[j].get();
    EXPECT_EQ(result.status, smtlib::CheckSatStatus::kSat) << "job " << j;
    ASSERT_TRUE(result.text.has_value()) << "job " << j;
    EXPECT_EQ(*result.text, "abc") << "job " << j;
    EXPECT_EQ(result.winner, "sa") << "job " << j;
  }
  const service::SolveService::Stats stats = service.stats();
  // Deterministic by construction: one fused invocation serving every job.
  EXPECT_EQ(stats.batch_invocations, 1u);
  EXPECT_EQ(stats.jobs_fused, kJobs);
  EXPECT_EQ(stats.jobs_submitted, kJobs);
  EXPECT_EQ(stats.jobs_completed, kJobs);
  EXPECT_EQ(stats.jobs_timed_out, 0u);
}

// Fused results must be bit-identical to solo runs: the same (constraint,
// seed, portfolio slot) solved sequentially (no fusion opportunity) and
// inside a fused batch decodes the exact same string. Palindromes have many
// satisfying answers, so agreement is a genuine stream-identity signal.
TEST(ServiceStress, FusedResultsMatchSoloRuns) {
  constexpr std::size_t kJobs = 4;
  const strqubo::Constraint constraint = strqubo::Palindrome{4};

  std::vector<service::JobResult> solo(kJobs);
  {
    // Same portfolio shape (gate at slot 0, SA at slot 1) so the SA lane's
    // member-index-mixed seeds are identical across both services; the gate
    // is pre-released and jobs run one at a time, so nothing fuses.
    auto open_gate = std::make_shared<GateState>();
    open_gate->release();
    service::ServiceOptions options;
    options.num_workers = 1;
    options.portfolio.push_back(gate_member(open_gate));
    options.portfolio.push_back(service::simulated_annealing_member("sa"));
    service::SolveService service(options);
    for (std::size_t j = 0; j < kJobs; ++j) {
      service::JobOptions job;
      job.seed = 40 + j;
      solo[j] = service.submit(constraint, job).get();
    }
    EXPECT_EQ(service.stats().jobs_fused, 0u);
  }

  auto gate = std::make_shared<GateState>();
  service::ServiceOptions options;
  options.num_workers = 1;
  options.portfolio.push_back(gate_member(gate));
  options.portfolio.push_back(service::simulated_annealing_member("sa"));
  service::SolveService service(options);
  std::vector<std::future<service::JobResult>> futures;
  service::JobOptions job;
  job.seed = 40;
  futures.push_back(service.submit(constraint, job));
  gate->wait_until_entered();
  for (std::size_t j = 1; j < kJobs; ++j) {
    job.seed = 40 + j;
    futures.push_back(service.submit(constraint, job));
  }
  gate->release();

  for (std::size_t j = 0; j < kJobs; ++j) {
    const service::JobResult fused = futures[j].get();
    EXPECT_EQ(fused.status, smtlib::CheckSatStatus::kSat) << "job " << j;
    ASSERT_TRUE(fused.text.has_value());
    ASSERT_TRUE(solo[j].text.has_value());
    EXPECT_EQ(*fused.text, *solo[j].text) << "job " << j;
  }
  EXPECT_GE(service.stats().jobs_fused, kJobs);
}

// Satellite: a deadline expiring while the fused kernel is mid-flight must
// time out EVERY fused job — the per-group cancel poll stops all of them
// within a sweep, and each job's race settles exactly once.
TEST(ServiceStress, FusedDeadlineTimesOutAllJobs) {
  constexpr std::size_t kJobs = 4;
  auto gate = std::make_shared<GateState>();
  anneal::SimulatedAnnealerParams heavy;
  heavy.num_reads = 4;
  heavy.num_sweeps = 2000000;  // Minutes of work if tokens were ignored.
  heavy.early_exit = false;
  service::ServiceOptions options;
  options.num_workers = 1;
  options.max_verify_retries = 0;
  options.portfolio.push_back(gate_member(gate));
  options.portfolio.push_back(
      service::simulated_annealing_member("sa-heavy", heavy));
  service::SolveService service(options);

  std::vector<std::future<service::JobResult>> futures;
  service::JobOptions job;
  job.deadline = milliseconds(150);
  // A long random palindrome is effectively never verified from the
  // unpolished random states a cancelled read returns.
  const strqubo::Constraint constraint = strqubo::Palindrome{12};
  job.seed = 1;
  futures.push_back(service.submit(constraint, job));
  gate->wait_until_entered();
  for (std::size_t j = 1; j < kJobs; ++j) {
    job.seed = j + 1;
    futures.push_back(service.submit(constraint, job));
  }
  gate->release();

  Stopwatch timer;
  for (std::size_t j = 0; j < kJobs; ++j) {
    const service::JobResult result = futures[j].get();
    EXPECT_EQ(result.status, smtlib::CheckSatStatus::kUnknown) << "job " << j;
    EXPECT_TRUE(result.timed_out) << "job " << j;
  }
  // The cancel stopped the fused kernel within a sweep of the deadline —
  // nowhere near the hours the full budget would take.
  EXPECT_LT(timer.elapsed_seconds(), 30.0);
  const service::SolveService::Stats stats = service.stats();
  EXPECT_EQ(stats.jobs_fused, kJobs);
  EXPECT_EQ(stats.jobs_completed, kJobs);
  EXPECT_EQ(stats.jobs_timed_out, kJobs);
}

// Satellite: a batchable member whose fused kernel invocation throws takes
// the member failure path for EVERY fused job — each job still completes
// exactly once (via its surviving siblings or the error verdict), and the
// pool survives.
TEST(ServiceStress, FusedKernelThrowFailsAllFusedJobsOnce) {
  constexpr std::size_t kJobs = 4;
  auto gate = std::make_shared<GateState>();
  anneal::SimulatedAnnealerParams broken;
  broken.num_reads = 0;  // Zero replicas: the batched kernel refuses to run.
  service::ServiceOptions options;
  options.num_workers = 1;
  options.max_verify_retries = 0;
  options.portfolio.push_back(gate_member(gate));
  options.portfolio.push_back(
      service::simulated_annealing_member("sa-broken", broken));
  service::SolveService service(options);

  std::vector<std::future<service::JobResult>> futures;
  service::JobOptions job;
  job.seed = 1;
  futures.push_back(service.submit(strqubo::Equality{"ab"}, job));
  gate->wait_until_entered();
  for (std::size_t j = 1; j < kJobs; ++j) {
    job.seed = j + 1;
    futures.push_back(service.submit(strqubo::Equality{"ab"}, job));
  }
  gate->release();

  for (std::size_t j = 0; j < kJobs; ++j) {
    const service::JobResult result = futures[j].get();
    EXPECT_EQ(result.status, smtlib::CheckSatStatus::kUnknown) << "job " << j;
    EXPECT_FALSE(result.timed_out) << "job " << j;
    const bool mentions_member = std::any_of(
        result.notes.begin(), result.notes.end(), [](const std::string& note) {
          return note.find("sa-broken") != std::string::npos;
        });
    EXPECT_TRUE(mentions_member) << "job " << j;
  }
  const service::SolveService::Stats stats = service.stats();
  EXPECT_EQ(stats.jobs_fused, kJobs);
  EXPECT_EQ(stats.jobs_completed, kJobs);
  EXPECT_GE(stats.member_errors, kJobs);

  // The pool keeps serving after the fused failure.
  const service::JobResult again =
      service.submit(strqubo::Equality{"cd"}).get();
  EXPECT_EQ(again.status, smtlib::CheckSatStatus::kUnknown);
}

// max_fused_jobs == 1 (and 0) disables fusion outright.
TEST(ServiceStress, FusionDisabledNeverBatches) {
  auto gate = std::make_shared<GateState>();
  service::ServiceOptions options;
  options.num_workers = 1;
  options.max_fused_jobs = 1;
  options.portfolio.push_back(gate_member(gate));
  options.portfolio.push_back(service::simulated_annealing_member("sa"));
  service::SolveService service(options);

  std::vector<std::future<service::JobResult>> futures;
  futures.push_back(service.submit(strqubo::Equality{"ab"}));
  gate->wait_until_entered();
  futures.push_back(service.submit(strqubo::Equality{"ab"}));
  futures.push_back(service.submit(strqubo::Equality{"ab"}));
  gate->release();
  for (auto& future : futures) {
    EXPECT_EQ(future.get().status, smtlib::CheckSatStatus::kSat);
  }
  const service::SolveService::Stats stats = service.stats();
  EXPECT_EQ(stats.batch_invocations, 0u);
  EXPECT_EQ(stats.jobs_fused, 0u);
}

// The headline stress: N submitter threads x M jobs with mixed deadlines,
// racing the pool from outside while the portfolio races inside. Checks
// that results are neither lost nor duplicated (every tag resolves exactly
// once), timeouts are reported as timeouts, and normal jobs solve.
TEST(ServiceStress, ConcurrentSubmittersMixedDeadlines) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kJobsPerThread = 12;

  service::ServiceOptions options;
  options.num_workers = 4;
  service::SolveService service(options);

  struct Submitted {
    std::uint64_t tag = 0;
    bool expect_timeout = false;
    std::future<service::JobResult> future;
  };
  std::vector<std::vector<Submitted>> per_thread(kThreads);
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&service, &per_thread, t] {
      const std::string words[] = {"ab", "abc", "abcd", "abcde"};
      for (std::size_t j = 0; j < kJobsPerThread; ++j) {
        Submitted submitted;
        submitted.tag = t * 1000 + j + 1;
        // Every third job gets an already-expired deadline.
        submitted.expect_timeout = (j % 3 == 2);
        service::JobOptions job;
        job.tag = submitted.tag;
        job.seed = submitted.tag;
        if (submitted.expect_timeout) job.deadline = nanoseconds(1);
        submitted.future = service.submit(
            strqubo::Equality{words[(t + j) % std::size(words)]}, job);
        per_thread[t].push_back(std::move(submitted));
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();

  std::map<std::uint64_t, int> seen;
  std::size_t timeouts = 0;
  for (std::vector<Submitted>& jobs : per_thread) {
    for (Submitted& submitted : jobs) {
      const service::JobResult result = submitted.future.get();
      // The result the future delivers is the one for this submission.
      EXPECT_EQ(result.tag, submitted.tag);
      ++seen[result.tag];
      if (submitted.expect_timeout) {
        EXPECT_TRUE(result.timed_out) << "tag " << submitted.tag;
        EXPECT_EQ(result.status, smtlib::CheckSatStatus::kUnknown);
        ++timeouts;
      } else {
        EXPECT_FALSE(result.timed_out) << "tag " << submitted.tag;
        EXPECT_EQ(result.status, smtlib::CheckSatStatus::kSat)
            << "tag " << submitted.tag;
      }
    }
  }
  // No lost and no duplicated results: every tag exactly once.
  EXPECT_EQ(seen.size(), kThreads * kJobsPerThread);
  for (const auto& [tag, count] : seen) {
    EXPECT_EQ(count, 1) << "tag " << tag;
  }

  const service::SolveService::Stats stats = service.stats();
  EXPECT_EQ(stats.jobs_submitted, kThreads * kJobsPerThread);
  EXPECT_EQ(stats.jobs_completed, kThreads * kJobsPerThread);
  EXPECT_EQ(stats.jobs_timed_out, timeouts);
}

// Batch API under load: input order is preserved even though completion
// order is arbitrary.
TEST(ServiceStress, BatchPreservesInputOrder) {
  service::ServiceOptions options;
  options.num_workers = 4;
  service::SolveService service(options);
  const std::vector<std::string> words = {"a",  "ab",  "abc", "abcd",
                                          "b",  "bc",  "bcd", "bcde",
                                          "c",  "cd",  "cde", "cdef"};
  std::vector<strqubo::Constraint> constraints;
  constraints.reserve(words.size());
  for (const std::string& word : words) {
    constraints.push_back(strqubo::Equality{word});
  }
  const std::vector<service::JobResult> results =
      service.solve_constraints(constraints);
  ASSERT_EQ(results.size(), words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    ASSERT_EQ(results[i].status, smtlib::CheckSatStatus::kSat) << i;
    ASSERT_TRUE(results[i].text.has_value());
    EXPECT_EQ(*results[i].text, words[i]) << i;
  }
}

}  // namespace
}  // namespace qsmt

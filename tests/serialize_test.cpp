#include <gtest/gtest.h>

#include <sstream>

#include "qubo/serialize.hpp"

namespace qsmt::qubo {
namespace {

TEST(Serialize, RoundTripsModel) {
  QuboModel model(4);
  model.set_offset(1.25);
  model.add_linear(0, -1.0);
  model.add_linear(3, 2.5);
  model.add_quadratic(0, 2, -3.5);
  model.add_quadratic(1, 3, 0.75);

  const QuboModel parsed = from_coo_string(to_coo_string(model));
  EXPECT_TRUE(parsed == model);
  EXPECT_EQ(parsed.num_variables(), 4u);
  EXPECT_DOUBLE_EQ(parsed.offset(), 1.25);
}

TEST(Serialize, RoundTripsEmptyModel) {
  QuboModel model(3);
  const QuboModel parsed = from_coo_string(to_coo_string(model));
  EXPECT_EQ(parsed.num_variables(), 3u);
  EXPECT_EQ(parsed.num_interactions(), 0u);
}

TEST(Serialize, OutputIsDeterministic) {
  QuboModel model(5);
  model.add_quadratic(3, 4, 1.0);
  model.add_quadratic(0, 1, 2.0);
  model.add_quadratic(1, 2, 3.0);
  EXPECT_EQ(to_coo_string(model), to_coo_string(model));
  // Quadratic lines must come out sorted by (i, j).
  const std::string text = to_coo_string(model);
  const auto p01 = text.find("0 1 2");
  const auto p12 = text.find("1 2 3");
  const auto p34 = text.find("3 4 1");
  ASSERT_NE(p01, std::string::npos);
  ASSERT_NE(p12, std::string::npos);
  ASSERT_NE(p34, std::string::npos);
  EXPECT_LT(p01, p12);
  EXPECT_LT(p12, p34);
}

TEST(Serialize, SkipsExactZeroEntries) {
  QuboModel model(2);
  model.add_quadratic(0, 1, 1.0);
  model.add_quadratic(0, 1, -1.0);
  const std::string text = to_coo_string(model);
  EXPECT_NE(text.find("qubo 2 0"), std::string::npos);
}

TEST(Serialize, BadHeaderThrows) {
  EXPECT_THROW(from_coo_string("ising 2 0 0"), std::invalid_argument);
  EXPECT_THROW(from_coo_string(""), std::invalid_argument);
  EXPECT_THROW(from_coo_string("qubo"), std::invalid_argument);
}

TEST(Serialize, TruncatedEntriesThrow) {
  EXPECT_THROW(from_coo_string("qubo 2 2 0\n0 0 1.0\n"), std::invalid_argument);
}

TEST(Serialize, OutOfRangeIndexThrows) {
  EXPECT_THROW(from_coo_string("qubo 2 1 0\n0 5 1.0\n"), std::invalid_argument);
}

TEST(Serialize, PreservesPrecision) {
  QuboModel model(1);
  model.add_linear(0, 1.0 / 3.0);
  model.set_offset(0.1234567890123456);
  const QuboModel parsed = from_coo_string(to_coo_string(model));
  EXPECT_DOUBLE_EQ(parsed.linear(0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(parsed.offset(), 0.1234567890123456);
}

TEST(FormatDense, SmallModelShownInFull) {
  QuboModel model(2);
  model.add_linear(0, 1.0);
  model.add_quadratic(0, 1, -2.0);
  const std::string text = format_dense(model);
  EXPECT_NE(text.find("1.00"), std::string::npos);
  EXPECT_NE(text.find("-2.00"), std::string::npos);
  EXPECT_EQ(text.find("..."), std::string::npos);
}

TEST(FormatDense, LargeModelIsAbbreviated) {
  QuboModel model(20);
  model.add_linear(0, 1.0);
  const std::string text = format_dense(model, /*max_dim=*/4);
  EXPECT_NE(text.find("..."), std::string::npos);
  EXPECT_NE(text.find("(20 x 20 total)"), std::string::npos);
}

TEST(FormatDense, RespectsPrecision) {
  QuboModel model(1);
  model.add_linear(0, 1.0 / 3.0);
  EXPECT_NE(format_dense(model, 10, 4).find("0.3333"), std::string::npos);
}

}  // namespace
}  // namespace qsmt::qubo

// Route bench: the adaptive portfolio router's resource win over the full
// race (docs/routing.md), on a mixed constraint workload spanning every op
// family.
//
// Three passes over the same seeded workload:
//
//   1. training — a live router starts empty; each bucket's first job
//      races and trains the win/loss table (sequential submission, so
//      outcomes land before the next decision);
//   2. full race — a router-less service races every job across the whole
//      portfolio: the pre-router baseline, dispatching
//      portfolio_size member-tasks per job;
//   3. routed — the trained router dispatches almost every job to a single
//      member; only fallbacks and low-confidence buckets cost more.
//
// The headline metric is mean cores-per-job: member-tasks dispatched per
// job (the cycles the pool spends, whether or not cancellation reclaims
// them early). The acceptance gate for the router is a >= 1.5x reduction
// at byte-equal verdicts, with the fallback rate reported alongside.
// --smoke shrinks the workload and gates routed mean latency <= full-race
// (the JSON-writing full run owns the cores-per-job gate; BENCH_route.json
// is the tracked baseline).
#include <cstddef>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "route/router.hpp"
#include "service/service.hpp"
#include "smtlib/driver.hpp"
#include "strqubo/constraint.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace qsmt;

constexpr std::size_t kNumWorkers = 4;
constexpr std::uint64_t kSeed = 0x40BE;

std::string random_word(Xoshiro256& rng, std::size_t min_len,
                        std::size_t max_len) {
  std::string word(min_len + rng.below(max_len - min_len + 1), 'a');
  for (char& c : word) c = static_cast<char>('a' + rng.below(5));
  return word;
}

/// One draw from op family `kind` (the differential-fuzz generator shapes).
strqubo::Constraint make_case(std::size_t kind, Xoshiro256& rng) {
  switch (kind) {
    case 0:
      return strqubo::Equality{random_word(rng, 2, 6)};
    case 1:
      return strqubo::Concat{random_word(rng, 1, 3), random_word(rng, 1, 3)};
    case 2: {
      const std::string text = random_word(rng, 3, 7);
      const std::size_t len =
          1 + rng.below(std::min<std::size_t>(3, text.size()));
      return strqubo::Includes{text,
                               text.substr(rng.below(text.size() - len + 1),
                                           len)};
    }
    case 3: {
      const std::size_t string_length = 2 + rng.below(5);
      return strqubo::Length{string_length, rng.below(string_length + 1)};
    }
    case 4:
      return strqubo::Replace{random_word(rng, 2, 6),
                              static_cast<char>('a' + rng.below(5)),
                              static_cast<char>('a' + rng.below(5))};
    case 5:
      return strqubo::Reverse{random_word(rng, 2, 6)};
    case 6:
      return strqubo::ReplaceAll{random_word(rng, 2, 6),
                                 static_cast<char>('a' + rng.below(5)),
                                 static_cast<char>('a' + rng.below(5))};
    case 7: {
      const std::size_t length = 3 + rng.below(3);
      return strqubo::SubstringMatch{length, random_word(rng, 1, 2)};
    }
    case 8: {
      const std::size_t length = 3 + rng.below(2);
      const std::string substring = random_word(rng, 1, 2);
      return strqubo::IndexOf{length, substring,
                              rng.below(length - substring.size() + 1)};
    }
    case 9: {
      const std::size_t length = 2 + rng.below(4);
      return strqubo::CharAt{length, rng.below(length),
                             static_cast<char>('a' + rng.below(5))};
    }
    case 10:
      return strqubo::Palindrome{1 + rng.below(5)};
    default: {
      static const std::vector<std::pair<std::string, std::size_t>> kPool = {
          {"ab", 2},  {"abc", 3}, {"a+b", 2},  {"a+b", 3}, {"ab+", 3},
          {"a+", 3},  {"a+b+", 3}, {"[ac]b", 2}, {"a[bc]", 2}};
      const auto& [pattern, length] = kPool[rng.below(kPool.size())];
      return strqubo::RegexMatch{pattern, length};
    }
  }
}

std::vector<strqubo::Constraint> make_workload(std::size_t num_jobs) {
  Xoshiro256 rng(kSeed);
  std::vector<strqubo::Constraint> jobs;
  jobs.reserve(num_jobs);
  for (std::size_t i = 0; i < num_jobs; ++i) {
    jobs.push_back(make_case(i % 12, rng));
  }
  return jobs;
}

/// Member-tasks the pool dispatched for one result: a routed job ran one
/// member; a fallback re-raced the remaining portfolio; everything else
/// (no router, low-confidence, explore) raced all members.
std::size_t dispatched_members(const service::JobResult& result,
                               std::size_t portfolio_size) {
  if (result.route == "routed") return 1;
  if (result.route == "routed+fallback") return portfolio_size;
  return portfolio_size;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::size_t num_jobs = smoke ? 96 : 240;
  const std::vector<strqubo::Constraint> jobs = make_workload(num_jobs);

  // The trained table shared by the training and routed passes.
  route::RouterOptions router_options;
  router_options.min_observations = 2;  // One 2-member race per bucket.
  router_options.min_win_rate = 0.5;
  router_options.explore_period = 0;  // Measurement passes stay routed.

  std::size_t portfolio_size = 0;
  {
    // Training pass: sequential submission through a live router, so each
    // bucket's first race lands in the table before the next decision.
    service::ServiceOptions options;
    options.num_workers = kNumWorkers;
    service::SolveService trainer(options);
    portfolio_size = trainer.portfolio_size();
    auto router = std::make_shared<route::Router>(trainer.portfolio_names(),
                                                  router_options);
    options.router = router;
    service::SolveService service(options);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      service::JobOptions job;
      job.seed = mix_seed(kSeed, i);
      service.submit(jobs[i], job).get();
    }

    // Full-race baseline: identical seeds, no router.
    service::ServiceOptions race_options;
    race_options.num_workers = kNumWorkers;
    service::SolveService race_service(race_options);
    service::JobOptions batch;
    batch.seed = kSeed;
    Stopwatch race_timer;
    const std::vector<service::JobResult> raced =
        race_service.solve_constraints(jobs, batch);
    const double race_seconds = race_timer.elapsed_seconds();

    // Routed pass: the trained table dispatches single members.
    service::ServiceOptions routed_options;
    routed_options.num_workers = kNumWorkers;
    routed_options.router = router;
    service::SolveService routed_service(routed_options);
    Stopwatch routed_timer;
    const std::vector<service::JobResult> routed =
        routed_service.solve_constraints(jobs, batch);
    const double routed_seconds = routed_timer.elapsed_seconds();

    // Equal verdicts are the precondition for every other number here.
    std::size_t verdict_mismatches = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (routed[i].status != raced[i].status) ++verdict_mismatches;
    }

    std::size_t race_dispatched = 0;
    std::size_t routed_dispatched = 0;
    std::size_t fallbacks = 0;
    std::size_t routed_jobs = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      race_dispatched += dispatched_members(raced[i], portfolio_size);
      routed_dispatched += dispatched_members(routed[i], portfolio_size);
      if (routed[i].route == "routed") ++routed_jobs;
      if (routed[i].route == "routed+fallback") {
        ++routed_jobs;
        ++fallbacks;
      }
    }
    const double race_cores =
        static_cast<double>(race_dispatched) / static_cast<double>(num_jobs);
    const double routed_cores =
        static_cast<double>(routed_dispatched) / static_cast<double>(num_jobs);
    const double cores_ratio = race_cores / routed_cores;
    const double race_mean_ms = race_seconds * 1e3 / num_jobs;
    const double routed_mean_ms = routed_seconds * 1e3 / num_jobs;
    const double fallback_rate =
        static_cast<double>(fallbacks) / static_cast<double>(num_jobs);

    std::cout << std::fixed << std::setprecision(3);
    std::cout << "route_bench: " << num_jobs << " jobs, " << kNumWorkers
              << " workers, portfolio size " << portfolio_size
              << (smoke ? " (smoke)" : "") << "\n";
    std::cout << "  full race: " << race_seconds << " s ("
              << race_mean_ms << " ms/job mean, " << race_cores
              << " cores/job)\n";
    std::cout << "  routed:    " << routed_seconds << " s ("
              << routed_mean_ms << " ms/job mean, " << routed_cores
              << " cores/job, " << routed_jobs << " routed, " << fallbacks
              << " fallbacks)\n";
    std::cout << "  cores-per-job reduction: " << cores_ratio << "x, "
              << "verdict mismatches: " << verdict_mismatches << "\n";

    if (verdict_mismatches != 0) {
      std::cerr << "route_bench: FAIL " << verdict_mismatches
                << " routed verdicts differ from the full race\n";
      return 1;
    }

    const unsigned hw = std::thread::hardware_concurrency();
    if (smoke) {
      // Seconds-scale CI stage: routing must never cost latency. Routed
      // dispatch does strictly less work per job, so its mean must stay at
      // or under the race's (small tolerance for scheduler noise); the
      // cores-per-job perf gate stays in the full, JSON-writing run. On a
      // single-core host the pool cannot overlap the race's members and
      // the comparison is noise, not signal (service_bench's idiom).
      if (hw < 2) {
        std::cout << "route_bench: latency gate skipped (single-core host)\n";
        return 0;
      }
      if (routed_mean_ms > race_mean_ms * 1.05) {
        std::cerr << "route_bench: FAIL routed mean latency "
                  << routed_mean_ms << " ms > full-race " << race_mean_ms
                  << " ms\n";
        return 1;
      }
      std::cout << "route_bench: PASS (routed mean latency <= full race)\n";
      return 0;
    }

    const char* gate = hw < 2            ? "skipped_single_core_host"
                       : cores_ratio >= 1.5 ? "pass"
                                            : "fail";
    std::ofstream out("BENCH_route.json");
    out << std::fixed << std::setprecision(4);
    out << "{\n"
        << "  \"num_jobs\": " << num_jobs << ",\n"
        << "  \"num_workers\": " << kNumWorkers << ",\n"
        << "  \"portfolio_size\": " << portfolio_size << ",\n"
        << "  \"hardware_concurrency\": " << hw << ",\n"
        << "  \"gate\": \"" << gate << "\",\n"
        << "  \"race_seconds\": " << race_seconds << ",\n"
        << "  \"race_mean_ms_per_job\": " << race_mean_ms << ",\n"
        << "  \"race_cores_per_job\": " << race_cores << ",\n"
        << "  \"routed_seconds\": " << routed_seconds << ",\n"
        << "  \"routed_mean_ms_per_job\": " << routed_mean_ms << ",\n"
        << "  \"routed_cores_per_job\": " << routed_cores << ",\n"
        << "  \"cores_per_job_reduction\": " << cores_ratio << ",\n"
        << "  \"jobs_routed\": " << routed_jobs << ",\n"
        << "  \"fallbacks\": " << fallbacks << ",\n"
        << "  \"fallback_rate\": " << fallback_rate << ",\n"
        << "  \"verdict_mismatches\": " << verdict_mismatches << "\n"
        << "}\n";

    if (hw < 2) {
      std::cout << "route_bench: cores gate skipped (single-core host)\n";
      return 0;
    }
    if (cores_ratio < 1.5) {
      std::cerr << "route_bench: FAIL cores-per-job reduction " << cores_ratio
                << " < 1.5\n";
      return 1;
    }
    std::cout << "route_bench: PASS (>= 1.5x cores-per-job reduction)\n";
  }
  return 0;
}

// Figure 1 end-to-end microbenchmarks: constraint -> binary variables ->
// QUBO matrix -> simulated annealer -> decode, one benchmark per supported
// operation. The success_rate counter reports the fraction of iterations
// whose decoded answer passed classical verification.
#include <benchmark/benchmark.h>

#include "anneal/simulated_annealer.hpp"
#include "strqubo/solver.hpp"

namespace {

using namespace qsmt;

strqubo::Constraint constraint_for(int index) {
  switch (index) {
    case 0:
      return strqubo::Equality{"hello"};
    case 1:
      return strqubo::Concat{"hello", " world"};
    case 2:
      return strqubo::SubstringMatch{6, "hi"};
    case 3:
      return strqubo::Includes{"hello world", "world"};
    case 4:
      return strqubo::IndexOf{6, "hi", 2};
    case 5:
      return strqubo::Length{3, 2};
    case 6:
      return strqubo::ReplaceAll{"hello world", 'l', 'x'};
    case 7:
      return strqubo::Replace{"hello", 'e', 'a'};
    case 8:
      return strqubo::Reverse{"hello"};
    case 9:
      return strqubo::Palindrome{6};
    default:
      return strqubo::RegexMatch{"a[bc]+", 5};
  }
}

void BM_EndToEnd(benchmark::State& state) {
  anneal::SimulatedAnnealerParams params;
  params.num_reads = 32;
  params.num_sweeps = 256;
  params.seed = 7;
  const anneal::SimulatedAnnealer annealer(params);
  const strqubo::StringConstraintSolver solver(annealer);
  const strqubo::Constraint constraint =
      constraint_for(static_cast<int>(state.range(0)));

  std::size_t solved = 0;
  std::size_t total = 0;
  for (auto _ : state) {
    const auto result = solver.solve(constraint);
    benchmark::DoNotOptimize(result.energy);
    solved += result.satisfied ? 1 : 0;
    ++total;
  }
  state.counters["success_rate"] =
      total == 0 ? 0.0 : static_cast<double>(solved) / static_cast<double>(total);
  state.counters["qubo_vars"] = static_cast<double>(
      strqubo::constraint_num_variables(constraint));
  state.SetLabel(strqubo::constraint_name(constraint));
}

void BM_BuildOnly(benchmark::State& state) {
  const strqubo::Constraint constraint =
      constraint_for(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto model = strqubo::build(constraint);
    benchmark::DoNotOptimize(model.num_variables());
  }
  state.SetLabel(strqubo::constraint_name(constraint));
}

}  // namespace

BENCHMARK(BM_EndToEnd)->DenseRange(0, 10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildOnly)->DenseRange(0, 10)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();

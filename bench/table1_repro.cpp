// Regenerates the paper's Table 1: six sample string constraints, the QUBO
// matrix each compiles to (abbreviated, as in the paper), and the solver's
// output, cross-checked against the classical verifier.
//
// Row inventory (paper order):
//   1. Reverse 'hello' and replace 'e' with 'a'            -> ollah
//   2. Generate a palindrome with length 6                 -> e.g. OnFFnO
//   3. Generate the regex a[bc]+ with length 5             -> e.g. abcbb
//   4. Concatenate 'hello' and ' world', replace all l->x  -> hexxo worxd
//   5. Generate a string of length 6 with 'hi' at index 2  -> e.g. qphiqp
#include <iomanip>
#include <iostream>
#include <string>

#include "anneal/simulated_annealer.hpp"
#include "qubo/serialize.hpp"
#include "strenc/ascii7.hpp"
#include "strqubo/pipeline.hpp"
#include "strqubo/solver.hpp"

namespace {

using namespace qsmt;

std::string printable_or_escaped(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (strenc::is_printable(c)) {
      out.push_back(c);
    } else {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\x%02x",
                    static_cast<unsigned char>(c));
      out += buffer;
    }
  }
  return out;
}

void print_row(const std::string& constraint_text,
               const qubo::QuboModel& model, const std::string& output,
               bool verified) {
  std::cout << "Constraint: " << constraint_text << '\n';
  std::cout << "Matrix (" << model.num_variables() << "x"
            << model.num_variables() << ", abbreviated):\n"
            << qubo::format_dense(model, 7) << '\n';
  std::cout << "Output:   " << printable_or_escaped(output) << '\n';
  std::cout << "Verified: " << (verified ? "yes" : "NO") << "\n";
  std::cout << std::string(72, '-') << '\n';
}

}  // namespace

int main() {
  std::cout << "Table 1 reproduction: sample string constraints -> QUBO -> "
               "simulated annealer -> decoded output\n"
            << std::string(72, '=') << '\n';

  anneal::SimulatedAnnealerParams params;
  params.num_reads = 64;
  params.num_sweeps = 512;
  params.seed = 2025;
  const anneal::SimulatedAnnealer annealer(params);

  strqubo::BuildOptions options;
  // The paper's Table 1 palindrome/indexOf outputs are printable strings;
  // the pure mirror formulation leaves characters entirely free, so the
  // harness adds the documented soft letter bias (see DESIGN.md).
  options.palindrome_printable_bias = 0.05;
  const strqubo::StringConstraintSolver solver(annealer, options);

  bool all_verified = true;

  // Row 1: Reverse 'hello' and replace 'e' with 'a' (§4.12 pipeline).
  {
    strqubo::Pipeline pipeline{strqubo::Reverse{"hello"}};
    pipeline.then(strqubo::ThenReplaceAll{'e', 'a'});
    const auto result = pipeline.run(solver);
    print_row("Reverse 'hello' and replace 'e' with 'a'",
              solver.build_model(result.stages[0].constraint),
              result.final_value, result.all_satisfied);
    all_verified &= result.all_satisfied;
  }

  // Row 2: Generate a palindrome with length 6.
  {
    const strqubo::Constraint constraint = strqubo::Palindrome{6};
    const auto result = solver.solve(constraint);
    print_row("Generate a palindrome with length 6",
              strqubo::build_palindrome(6), *result.text, result.satisfied);
    all_verified &= result.satisfied;
  }

  // Row 3: Generate the regex a[bc]+ with length 5.
  {
    const strqubo::Constraint constraint = strqubo::RegexMatch{"a[bc]+", 5};
    const auto result = solver.solve(constraint);
    print_row("Generate the regex a[bc]+ with length 5",
              solver.build_model(constraint), *result.text, result.satisfied);
    all_verified &= result.satisfied;
  }

  // Row 4: Concatenate 'hello' and ' world', and replace all 'l' with 'x'.
  {
    strqubo::Pipeline pipeline{strqubo::Concat{"hello", " world"}};
    pipeline.then(strqubo::ThenReplaceAll{'l', 'x'});
    const auto result = pipeline.run(solver);
    print_row(
        "Concatenate 'hello' and ' world', and replace all 'l' with 'x'",
        solver.build_model(result.stages[1].constraint), result.final_value,
        result.all_satisfied);
    all_verified &= result.all_satisfied;
  }

  // Row 5: Generate a string of length 6 that contains 'hi' at index 2.
  {
    const strqubo::Constraint constraint = strqubo::IndexOf{6, "hi", 2};
    const auto result = solver.solve(constraint);
    print_row(
        "Generate a string of length 6 that contains the substring 'hi' at "
        "index 2",
        solver.build_model(constraint), *result.text, result.satisfied);
    all_verified &= result.satisfied;
  }

  std::cout << (all_verified ? "All Table 1 rows verified.\n"
                             : "SOME TABLE 1 ROWS FAILED VERIFICATION.\n");
  return all_verified ? 0 : 1;
}

// E2 — sampler comparison: simulated annealing vs tabu vs greedy descent vs
// random vs exact on the two quadratic (hard) formulations, palindrome and
// one-hot regex.
//
// Expected shape: exact is optimal but exponential (only feasible at tiny n
// and excluded from larger instances); SA and tabu find the ground state
// with high success; greedy restarts degrade on rugged landscapes; random is
// the floor.
#include <benchmark/benchmark.h>

#include <memory>

#include "anneal/exact.hpp"
#include "anneal/greedy.hpp"
#include "anneal/random_sampler.hpp"
#include "anneal/simulated_annealer.hpp"
#include "anneal/tabu.hpp"
#include "anneal/population.hpp"
#include "anneal/tempering.hpp"
#include "strqubo/solver.hpp"

namespace {

using namespace qsmt;

std::unique_ptr<anneal::Sampler> make_sampler(int which) {
  switch (which) {
    case 0: {
      anneal::SimulatedAnnealerParams p;
      p.num_reads = 32;
      p.num_sweeps = 256;
      p.seed = 17;
      return std::make_unique<anneal::SimulatedAnnealer>(p);
    }
    case 1: {
      anneal::TabuParams p;
      p.num_restarts = 16;
      p.seed = 17;
      return std::make_unique<anneal::TabuSampler>(p);
    }
    case 2: {
      anneal::GreedyDescentParams p;
      p.num_reads = 64;
      p.seed = 17;
      return std::make_unique<anneal::GreedyDescent>(p);
    }
    case 3: {
      anneal::RandomSamplerParams p;
      p.num_reads = 64;
      p.seed = 17;
      return std::make_unique<anneal::RandomSampler>(p);
    }
    case 5: {
      anneal::ParallelTemperingParams p;
      p.num_reads = 8;
      p.num_sweeps = 128;
      p.seed = 17;
      return std::make_unique<anneal::ParallelTempering>(p);
    }
    case 6: {
      anneal::PopulationAnnealingParams p;
      p.num_reads = 8;
      p.seed = 17;
      return std::make_unique<anneal::PopulationAnnealing>(p);
    }
    default:
      return std::make_unique<anneal::ExactSolver>();
  }
}

const char* sampler_label(int which) {
  switch (which) {
    case 0:
      return "simulated-annealing";
    case 1:
      return "tabu";
    case 2:
      return "greedy";
    case 3:
      return "random";
    case 5:
      return "parallel-tempering";
    case 6:
      return "population-annealing";
    default:
      return "exact";
  }
}

void BM_PalindromeBySampler(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto sampler = make_sampler(which);
  // Exact enumerates 2^(7n): cap it at n = 4 (28 vars).
  if (which == 4 && n > 4) {
    // Exact enumeration beyond 28 variables is infeasible; report an empty
    // run rather than burning hours (benchmark 1.7 has no SkipWithMessage).
    state.SkipWithError("exact solver capped at 28 variables");
    return;
  }
  const strqubo::StringConstraintSolver solver(*sampler);
  const strqubo::Constraint constraint = strqubo::Palindrome{n};

  std::size_t solved = 0;
  std::size_t total = 0;
  for (auto _ : state) {
    const auto result = solver.solve(constraint);
    benchmark::DoNotOptimize(result.energy);
    solved += result.satisfied ? 1 : 0;
    ++total;
  }
  state.counters["success_rate"] =
      total == 0 ? 0.0
                 : static_cast<double>(solved) / static_cast<double>(total);
  state.SetLabel(std::string(sampler_label(which)) + "/n=" +
                 std::to_string(n));
}

void BM_OneHotRegexBySampler(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const auto sampler = make_sampler(which);
  strqubo::BuildOptions options;
  options.regex_encoding = strqubo::RegexClassEncoding::kOneHotSelectors;
  const strqubo::StringConstraintSolver solver(*sampler, options);
  const strqubo::Constraint constraint = strqubo::RegexMatch{"a[bd]+", 3};

  std::size_t solved = 0;
  std::size_t total = 0;
  for (auto _ : state) {
    const auto result = solver.solve(constraint);
    benchmark::DoNotOptimize(result.energy);
    solved += result.satisfied ? 1 : 0;
    ++total;
  }
  state.counters["success_rate"] =
      total == 0 ? 0.0
                 : static_cast<double>(solved) / static_cast<double>(total);
  state.SetLabel(sampler_label(which));
}

}  // namespace

BENCHMARK(BM_PalindromeBySampler)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6}, {4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OneHotRegexBySampler)
    ->ArgsProduct({{0, 1, 2, 3, 5, 6}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();

// E9 — quadratization ablation for the NotContains extension: ancilla
// overhead and annealer success rate as the string length and forbidden
// substring length grow.
//
// Expected shape: ancilla count grows as (L - m + 1) x (7m - 1 + #zero
// bits); success stays high for short forbidden substrings and degrades as
// the AND chains deepen (longer chains mean softer effective penalties and
// more local minima).
#include <iomanip>
#include <iostream>

#include "anneal/simulated_annealer.hpp"
#include "strenc/ascii7.hpp"
#include "strqubo/solver.hpp"

namespace {

using namespace qsmt;

struct Row {
  std::size_t length;
  std::string forbidden;
  std::size_t total_vars;
  std::size_t ancillas;
  std::size_t couplers;
  double success;
};

Row run(std::size_t length, const std::string& forbidden) {
  const auto model = strqubo::build_not_contains(length, forbidden);
  const std::size_t string_bits = strenc::num_variables(length);

  std::size_t successes = 0;
  constexpr std::size_t kTrials = 10;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    anneal::SimulatedAnnealerParams params;
    params.num_reads = 48;
    params.num_sweeps = 384;
    params.seed = 400 + trial;
    const anneal::SimulatedAnnealer annealer(params);
    const strqubo::StringConstraintSolver solver(annealer);
    const auto result =
        solver.solve(strqubo::NotContains{length, forbidden});
    successes += result.satisfied ? 1 : 0;
  }
  return Row{length,
             forbidden,
             model.num_variables(),
             model.num_variables() - string_bits,
             model.num_interactions(),
             static_cast<double>(successes) / kTrials};
}

}  // namespace

int main() {
  std::cout << "E9: NotContains quadratization overhead and annealer "
               "success\n\n";
  std::cout << "length  forbidden  qubo_vars  ancillas  couplers  success\n";
  std::cout << std::string(60, '-') << '\n';
  for (std::size_t length : {3, 5, 8}) {
    for (const std::string& forbidden : {std::string("a"), std::string("ab"),
                                         std::string("abc")}) {
      if (forbidden.size() > length) continue;
      const Row row = run(length, forbidden);
      std::cout << std::setw(6) << row.length << "  " << std::setw(9)
                << ("'" + row.forbidden + "'") << "  " << std::setw(9)
                << row.total_vars << "  " << std::setw(8) << row.ancillas
                << "  " << std::setw(8) << row.couplers << "  " << std::setw(7)
                << std::fixed << std::setprecision(2) << row.success << '\n';
    }
  }
  std::cout << "\nExpected shape: ancillas grow ~linearly with windows x "
               "substring bits; success degrades\nslowly as AND chains "
               "deepen.\n";
  return 0;
}

// E4 — minor-embedding study: embedding a palindrome QUBO and an includes
// QUBO onto a Chimera topology, sweeping the chain strength and reporting
// chain statistics, chain-break rate, and logical success probability.
//
// Expected shape: at very weak chain strength the chains tear (high break
// fraction, poor success); raising the strength suppresses breaks and
// success plateaus; far beyond that the problem signal is drowned and
// success can dip again (the classic chain-strength sweet spot).
#include <iomanip>
#include <iostream>

#include "anneal/exact.hpp"
#include "graph/chimera.hpp"
#include "graph/embedded_sampler.hpp"
#include "strqubo/builders.hpp"

namespace {

using namespace qsmt;

void run_sweep(const std::string& label, const qubo::QuboModel& model,
               double ground_energy) {
  const graph::Graph chimera = graph::make_chimera(4, 4, 4);
  std::cout << label << " (" << model.num_variables() << " logical vars, "
            << model.num_interactions() << " couplers) on Chimera C(4,4,4)\n";
  std::cout << "  chain_strength  physical  max_chain  break_frac  success\n";
  std::cout << "  " << std::string(56, '-') << '\n';
  for (double chain_strength : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    graph::EmbeddedSamplerParams params;
    params.chain_strength = chain_strength;
    params.anneal.num_reads = 64;
    params.anneal.num_sweeps = 256;
    params.anneal.seed = 5;
    params.anneal.polish_with_greedy = false;
    params.embedding_seed = 5;
    const graph::EmbeddedSampler sampler(chimera, params);

    graph::EmbeddedSampleStats stats;
    const anneal::SampleSet samples = sampler.sample_with_stats(model, stats);
    const double success = samples.success_fraction(ground_energy);
    std::cout << "  " << std::setw(14) << std::fixed << std::setprecision(2)
              << chain_strength << "  " << std::setw(8)
              << stats.physical_variables << "  " << std::setw(9)
              << stats.embedding.max_chain_length() << "  " << std::setw(10)
              << std::setprecision(4) << stats.chain_break_fraction << "  "
              << std::setw(7) << std::setprecision(3) << success << '\n';
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "E4: minor-embedding chain-strength sweep (majority-vote "
               "chain-break resolution)\n\n";

  const auto palindrome = strqubo::build_palindrome(3);
  run_sweep("palindrome(3)", palindrome,
            anneal::ExactSolver().ground_energy(palindrome));

  const auto includes = strqubo::build_includes("abcabcab", "abc");
  run_sweep("includes('abcabcab','abc')", includes,
            anneal::ExactSolver().ground_energy(includes));
  return 0;
}

// Hot-path bench: measures the three surfaces the annealing overhaul
// touched and writes BENCH_hotpath.json (in the CWD; run from the repo
// root so the tracked baseline gets refreshed in place).
//
//   1. Sweep throughput — the post-overhaul read path (screened exp-free
//      kernel + anneal-then-quench default schedule + zero-flip early
//      exit) vs the pre-overhaul read path (per-flip std::exp kernel on
//      the plain geometric schedule, detail::anneal_read_reference).
//      Both sides run num_reads=32 / num_sweeps=256 single-threaded with
//      the greedy polish sample() applies, and report best/mean energies
//      so quality parity is visible next to the speedup. Timings are the
//      minimum over interleaved repetitions — this host's wall-clock
//      noise is far larger than the effect floor, and min-of-reps is the
//      standard estimator for the undisturbed run.
//
// Measurement bookkeeping (min-of-reps, energy best/mean) goes through a
// bench-local always-enabled telemetry::Registry rather than hand-rolled
// accumulators: per-rep seconds and per-read energies are recorded into
// histograms and the minima/means read back from one snapshot. The
// process-global registry (QSMT_TELEMETRY) stays untouched, so running
// this bench with telemetry off still measures the instrumented library's
// disabled-path overhead honestly.
//   2. Adjacency (CSR) build time from a QuboModel.
//   3. QUBO assembly — QuboBuilder's COO sort/merge fast path vs
//      incremental QuboModel::add_quadratic on the same term stream.
//
// Workloads mirror bench/sampler_bench.cpp: palindrome(8) and
// palindrome(16) (mirror couplings, dense quadratic structure) and the
// one-hot regex a[bd]+ at length 3 (selector variables with pairwise
// one-hot exclusion penalties). The default paper-averaged regex encoding
// is purely linear, so the one-hot encoding is the quadratic workload.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "anneal/context.hpp"
#include "anneal/greedy.hpp"
#include "anneal/schedule.hpp"
#include "anneal/simulated_annealer.hpp"
#include "qubo/adjacency.hpp"
#include "qubo/builder.hpp"
#include "qubo/qubo_model.hpp"
#include "strqubo/builders.hpp"
#include "telemetry/registry.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace qsmt;

constexpr std::size_t kNumReads = 32;
constexpr std::size_t kNumSweeps = 256;
constexpr std::size_t kReps = 7;
constexpr std::uint64_t kSeed = 17;

struct EnergyStats {
  double best = std::numeric_limits<double>::infinity();
  double mean = 0.0;
};

// Bench-local metrics registry; always enabled, independent of the
// QSMT_TELEMETRY gate on the process-global registry.
telemetry::Registry& bench_registry() {
  static telemetry::Registry registry;
  return registry;
}

// Exact minimum of everything recorded under `name` (HistogramStat tracks
// true min/max alongside the buckets, so min-of-reps loses no precision).
double recorded_min(const telemetry::Snapshot& snapshot,
                    const std::string& name) {
  const telemetry::HistogramStat* h = snapshot.histogram(name);
  return (h != nullptr && h->count > 0)
             ? h->min
             : std::numeric_limits<double>::infinity();
}

EnergyStats recorded_energy(const telemetry::Snapshot& snapshot,
                            const std::string& name) {
  EnergyStats stats;
  const telemetry::HistogramStat* h = snapshot.histogram(name);
  if (h != nullptr && h->count > 0) {
    stats.best = h->min;
    stats.mean = h->mean();
  }
  return stats;
}

struct KernelResult {
  std::string workload;
  std::size_t num_variables = 0;
  double reference_seconds = 0.0;
  double new_seconds = 0.0;
  double reference_attempts_per_second = 0.0;
  double new_attempts_per_second = 0.0;
  /// Headline serving metric: completed annealing reads per second (the
  /// unit the batched substrate is benched in — see bench/batch_bench.cpp).
  double reference_reads_per_second = 0.0;
  double new_reads_per_second = 0.0;
  double speedup = 0.0;
  EnergyStats reference_energy;
  EnergyStats new_energy;
};

// One timed repetition of the pre-overhaul read path: per-flip-exp kernel,
// plain geometric schedule, greedy polish — what sample() did before the
// overhaul. Records wall seconds and per-read energies (energy recording
// happens outside the timed region).
void run_reference(const qubo::QuboAdjacency& adjacency,
                   std::span<const double> betas,
                   telemetry::Histogram seconds_hist,
                   telemetry::Histogram energy_hist) {
  const std::size_t n = adjacency.num_variables();
  std::vector<std::uint8_t> bits(n);
  std::vector<double> energies(kNumReads);
  Stopwatch timer;
  for (std::size_t read = 0; read < kNumReads; ++read) {
    Xoshiro256 rng(kSeed, read);
    for (std::size_t i = 0; i < n; ++i) bits[i] = rng.coin() ? 1 : 0;
    anneal::detail::anneal_read_reference(adjacency, betas, rng, bits);
    anneal::detail::greedy_descend(adjacency, bits);
    energies[read] = adjacency.energy(bits);
  }
  seconds_hist.record(timer.elapsed_seconds());
  for (const double e : energies) energy_hist.record(e);
}

// One timed repetition of the post-overhaul read path: screened kernel,
// quench schedule, early exit, context reuse, polish off the maintained
// field — what sample() does now.
void run_new(const qubo::QuboAdjacency& adjacency,
             std::span<const double> betas, anneal::AnnealContext& ctx,
             telemetry::Histogram seconds_hist,
             telemetry::Histogram energy_hist) {
  std::vector<double> energies(kNumReads);
  Stopwatch timer;
  for (std::size_t read = 0; read < kNumReads; ++read) {
    Xoshiro256 rng(kSeed, read);
    for (auto& b : ctx.bits) b = rng.coin() ? 1 : 0;
    anneal::detail::anneal_read(adjacency, betas, rng, ctx);
    anneal::detail::greedy_descend(adjacency, ctx.bits, ctx.field);
    energies[read] = adjacency.energy(ctx.bits);
  }
  seconds_hist.record(timer.elapsed_seconds());
  for (const double e : energies) energy_hist.record(e);
}

KernelResult bench_kernels(const std::string& workload,
                           const qubo::QuboModel& model) {
  KernelResult result;
  result.workload = workload;
  const std::size_t n = model.num_variables();
  result.num_variables = n;

  const qubo::QuboAdjacency adjacency(model);
  const anneal::BetaRange range = anneal::default_beta_range(adjacency);
  const std::vector<double> plain = anneal::make_schedule(
      range.hot, range.cold, kNumSweeps, anneal::Interpolation::kGeometric);
  const std::vector<double> quench = anneal::make_quench_schedule(
      range.hot, range.cold, kNumSweeps, anneal::Interpolation::kGeometric);

  anneal::AnnealContext ctx;
  ctx.prepare(n);

  telemetry::Registry& registry = bench_registry();
  const std::string prefix = "sweep." + workload;
  const auto ref_seconds = registry.histogram(prefix + ".reference.seconds",
                                              telemetry::Unit::kSeconds);
  const auto new_seconds =
      registry.histogram(prefix + ".new.seconds", telemetry::Unit::kSeconds);
  const auto ref_energy = registry.histogram(prefix + ".reference.energy");
  const auto new_energy = registry.histogram(prefix + ".new.energy");

  // Interleave the two sides so slow drift on the host hits both equally;
  // the registry keeps exact per-side minima across the reps.
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    run_reference(adjacency, plain, ref_seconds, ref_energy);
    run_new(adjacency, quench, ctx, new_seconds, new_energy);
  }
  const telemetry::Snapshot snapshot = registry.snapshot();
  result.reference_seconds = recorded_min(snapshot, prefix + ".reference.seconds");
  result.new_seconds = recorded_min(snapshot, prefix + ".new.seconds");
  result.reference_energy = recorded_energy(snapshot, prefix + ".reference.energy");
  result.new_energy = recorded_energy(snapshot, prefix + ".new.energy");

  const double attempts =
      static_cast<double>(kNumReads) * static_cast<double>(kNumSweeps) *
      static_cast<double>(n);
  result.reference_attempts_per_second = attempts / result.reference_seconds;
  result.new_attempts_per_second = attempts / result.new_seconds;
  result.reference_reads_per_second =
      static_cast<double>(kNumReads) / result.reference_seconds;
  result.new_reads_per_second =
      static_cast<double>(kNumReads) / result.new_seconds;
  result.speedup = result.reference_seconds / result.new_seconds;
  return result;
}

struct AdjacencyResult {
  std::string workload;
  std::size_t num_variables = 0;
  std::size_t num_interactions = 0;
  double seconds_per_build = 0.0;
};

AdjacencyResult bench_adjacency(const std::string& workload,
                                const qubo::QuboModel& model) {
  constexpr std::size_t kBuilds = 200;
  AdjacencyResult result;
  result.workload = workload;
  result.num_variables = model.num_variables();
  telemetry::Registry& registry = bench_registry();
  const std::string name = "adjacency." + workload + ".seconds_per_build";
  const auto per_build = registry.histogram(name, telemetry::Unit::kSeconds);
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    Stopwatch timer;
    std::size_t checksum = 0;
    for (std::size_t b = 0; b < kBuilds; ++b) {
      const qubo::QuboAdjacency adjacency(model);
      checksum += adjacency.num_interactions();
    }
    per_build.record(timer.elapsed_seconds() / static_cast<double>(kBuilds));
    result.num_interactions = checksum / kBuilds;
  }
  result.seconds_per_build = recorded_min(registry.snapshot(), name);
  return result;
}

struct AssemblyResult {
  std::size_t num_variables = 0;
  std::size_t num_terms = 0;
  double incremental_seconds = 0.0;
  double builder_seconds = 0.0;
  double speedup = 0.0;
  bool models_equal = false;
};

// Same synthetic term stream (duplicates, unsorted index pairs) fed to
// incremental QuboModel inserts and to the flat QuboBuilder; both paths
// must produce equal models.
AssemblyResult bench_assembly() {
  constexpr std::size_t kVars = 256;  // a 32-char string at 8 bits/char
  constexpr std::size_t kTerms = 200000;

  struct Term {
    std::size_t i;
    std::size_t j;
    double value;
  };
  std::vector<Term> terms;
  terms.reserve(kTerms);
  Xoshiro256 rng(11, 0);
  for (std::size_t t = 0; t < kTerms; ++t) {
    const auto i = static_cast<std::size_t>(rng.uniform() * kVars);
    const auto j = static_cast<std::size_t>(rng.uniform() * kVars);
    terms.push_back(Term{std::min(i, kVars - 1), std::min(j, kVars - 1),
                         rng.uniform() * 2.0 - 1.0});
  }

  AssemblyResult result;
  result.num_variables = kVars;
  result.num_terms = kTerms;

  telemetry::Registry& registry = bench_registry();
  const auto incremental_hist = registry.histogram(
      "assembly.incremental.seconds", telemetry::Unit::kSeconds);
  const auto builder_hist = registry.histogram("assembly.builder.seconds",
                                               telemetry::Unit::kSeconds);

  // Assembly runs are cheap but allocation-heavy, which makes them the
  // noisiest section; extra repetitions keep the minima stable.
  constexpr std::size_t kAssemblyReps = 3 * kReps;
  qubo::QuboModel incremental(0);
  qubo::QuboModel built(0);
  for (std::size_t rep = 0; rep < kAssemblyReps; ++rep) {
    {
      Stopwatch timer;
      qubo::QuboModel model(kVars);
      for (const Term& t : terms) {
        if (t.i == t.j) {
          model.add_linear(t.i, t.value);
        } else {
          model.add_quadratic(t.i, t.j, t.value);
        }
      }
      incremental_hist.record(timer.elapsed_seconds());
      incremental = std::move(model);
    }
    {
      Stopwatch timer;
      qubo::QuboBuilder builder(kVars);
      builder.reserve_terms(kTerms);
      for (const Term& t : terms) builder.add_quadratic(t.i, t.j, t.value);
      built = builder.build();
      builder_hist.record(timer.elapsed_seconds());
    }
  }
  const telemetry::Snapshot snapshot = registry.snapshot();
  result.incremental_seconds =
      recorded_min(snapshot, "assembly.incremental.seconds");
  result.builder_seconds = recorded_min(snapshot, "assembly.builder.seconds");

  result.speedup = result.incremental_seconds / result.builder_seconds;
  result.models_equal = incremental == built;
  return result;
}

void write_json(const std::vector<KernelResult>& kernels,
                const std::vector<AdjacencyResult>& adjacencies,
                const AssemblyResult& assembly) {
  std::ofstream out("BENCH_hotpath.json");
  out << std::setprecision(6);
  out << "{\n";
  out << "  \"config\": {\"num_reads\": " << kNumReads
      << ", \"num_sweeps\": " << kNumSweeps << ", \"reps\": " << kReps
      << ", \"seed\": " << kSeed << ", \"timing\": \"min_of_reps\"},\n";
  out << "  \"sweep_kernel\": [\n";
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    const KernelResult& r = kernels[k];
    out << "    {\"workload\": \"" << r.workload << "\", \"num_variables\": "
        << r.num_variables << ",\n     \"reference_seconds\": "
        << r.reference_seconds << ", \"new_seconds\": " << r.new_seconds
        << ",\n     \"reference_attempts_per_second\": "
        << r.reference_attempts_per_second
        << ", \"new_attempts_per_second\": " << r.new_attempts_per_second
        << ",\n     \"reference_reads_per_second\": "
        << r.reference_reads_per_second
        << ", \"new_reads_per_second\": " << r.new_reads_per_second
        << ",\n     \"speedup\": " << r.speedup
        << ",\n     \"reference_best_energy\": " << r.reference_energy.best
        << ", \"new_best_energy\": " << r.new_energy.best
        << ",\n     \"reference_mean_energy\": " << r.reference_energy.mean
        << ", \"new_mean_energy\": " << r.new_energy.mean << "}"
        << (k + 1 < kernels.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"adjacency_build\": [\n";
  for (std::size_t k = 0; k < adjacencies.size(); ++k) {
    const AdjacencyResult& r = adjacencies[k];
    out << "    {\"workload\": \"" << r.workload << "\", \"num_variables\": "
        << r.num_variables << ", \"num_interactions\": " << r.num_interactions
        << ", \"seconds_per_build\": " << r.seconds_per_build << "}"
        << (k + 1 < adjacencies.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"qubo_assembly\": {\"num_variables\": " << assembly.num_variables
      << ", \"num_terms\": " << assembly.num_terms
      << ",\n    \"incremental_seconds\": " << assembly.incremental_seconds
      << ", \"builder_seconds\": " << assembly.builder_seconds
      << ",\n    \"speedup\": " << assembly.speedup << ", \"models_equal\": "
      << (assembly.models_equal ? "true" : "false") << "}\n";
  out << "}\n";
}

}  // namespace

int main() {
  strqubo::BuildOptions onehot;
  onehot.regex_encoding = strqubo::RegexClassEncoding::kOneHotSelectors;
  const qubo::QuboModel palindrome8 = strqubo::build_palindrome(8);
  const qubo::QuboModel palindrome16 = strqubo::build_palindrome(16);
  const qubo::QuboModel regex = strqubo::build_regex("a[bd]+", 3, onehot);

  std::vector<KernelResult> kernels;
  kernels.push_back(bench_kernels("palindrome_8", palindrome8));
  kernels.push_back(bench_kernels("palindrome_16", palindrome16));
  kernels.push_back(bench_kernels("regex_onehot_abd_3", regex));

  std::vector<AdjacencyResult> adjacencies;
  adjacencies.push_back(bench_adjacency("palindrome_16", palindrome16));
  adjacencies.push_back(bench_adjacency("regex_onehot_abd_3", regex));

  const AssemblyResult assembly = bench_assembly();

  std::cout << std::fixed << std::setprecision(3);
  bool palindrome_2x = true;
  for (const KernelResult& r : kernels) {
    std::cout << r.workload << " (" << r.num_variables
              << " vars): reference " << r.reference_seconds * 1e3
              << " ms, new " << r.new_seconds * 1e3 << " ms, speedup "
              << r.speedup << "x, best " << r.reference_energy.best << " -> "
              << r.new_energy.best << ", mean " << r.reference_energy.mean
              << " -> " << r.new_energy.mean << "\n";
    if (r.workload.rfind("palindrome", 0) == 0 && r.speedup < 2.0) {
      palindrome_2x = false;
    }
  }
  for (const AdjacencyResult& r : adjacencies) {
    std::cout << r.workload << ": adjacency build "
              << r.seconds_per_build * 1e6 << " us ("
              << r.num_interactions << " interactions)\n";
  }
  std::cout << "assembly (" << assembly.num_terms << " terms): incremental "
            << assembly.incremental_seconds * 1e3 << " ms, builder "
            << assembly.builder_seconds * 1e3 << " ms, speedup "
            << assembly.speedup << "x, equal="
            << (assembly.models_equal ? "yes" : "NO") << "\n";
  if (!palindrome_2x) {
    std::cout << "WARNING: palindrome sweep speedup below the tracked 2x "
                 "target (noisy host? rerun)\n";
  }

  write_json(kernels, adjacencies, assembly);
  std::cout << "wrote BENCH_hotpath.json\n";
  return assembly.models_equal ? 0 : 1;
}

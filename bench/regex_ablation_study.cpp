// E6 — regex class-encoding ablation: the paper's averaged ±A/|class| bias
// (§4.11) vs the one-hot selector extension, measured by the rate at which
// decoded characters fall outside the class ("invalid-char rate") and the
// overall constraint success rate.
//
// Classes are chosen by the Hamming distance between their two members'
// 7-bit encodings: the averaged encoding leaves every disagreeing bit
// unbiased, so its invalid-char rate grows as ~(2^d - 2)/2^d with distance
// d, while the one-hot encoding should stay near zero at every distance.
#include <iomanip>
#include <iostream>

#include "anneal/simulated_annealer.hpp"
#include "strenc/ascii7.hpp"
#include "strqubo/solver.hpp"
#include "strqubo/verify.hpp"

namespace {

using namespace qsmt;

int hamming(char a, char b) {
  const auto ea = strenc::encode_char(a);
  const auto eb = strenc::encode_char(b);
  int d = 0;
  for (std::size_t i = 0; i < ea.size(); ++i) d += ea[i] != eb[i];
  return d;
}

struct Outcome {
  double invalid_char_rate;
  double success_rate;
};

Outcome run(const std::string& klass, strqubo::RegexClassEncoding encoding) {
  const std::string pattern = "[" + klass + "]+";
  const std::size_t length = 4;
  anneal::SimulatedAnnealerParams params;
  params.num_reads = 64;
  params.num_sweeps = 256;
  params.seed = 77;
  const anneal::SimulatedAnnealer annealer(params);
  strqubo::BuildOptions options;
  options.regex_encoding = encoding;
  const strqubo::StringConstraintSolver solver(annealer, options);

  std::size_t invalid_chars = 0;
  std::size_t total_chars = 0;
  std::size_t successes = 0;
  constexpr std::size_t kTrials = 16;
  const strqubo::RegexMatch constraint{pattern, length};
  const auto model = strqubo::build(constraint, options);
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    // Re-seed per trial so the statistics have support. Decode only the
    // single lowest-energy sample — the study measures what the ENCODING's
    // ground manifold contains, not the solver's verified-sample rescue.
    anneal::SimulatedAnnealerParams p = params;
    p.seed = 77 + trial;
    const anneal::SimulatedAnnealer trial_annealer(p);
    const auto samples = trial_annealer.sample(model);
    const std::string decoded = strenc::decode_string(
        std::span(samples.best().bits)
            .subspan(0, strenc::num_variables(length)));
    successes += strqubo::verify_string(constraint, decoded) ? 1 : 0;
    for (char c : decoded) {
      ++total_chars;
      if (klass.find(c) == std::string::npos) ++invalid_chars;
    }
  }
  return Outcome{
      static_cast<double>(invalid_chars) / static_cast<double>(total_chars),
      static_cast<double>(successes) / static_cast<double>(kTrials)};
}

}  // namespace

int main() {
  std::cout << "E6: regex character-class encoding ablation "
               "(paper-averaged vs one-hot selectors)\n\n";
  std::cout << "class  hamming  encoding   invalid_char_rate  success\n";
  std::cout << std::string(56, '-') << '\n';
  // Classes of increasing member Hamming distance.
  for (const std::string klass : {"bc", "bd", "ao", "av"}) {
    const int d = hamming(klass[0], klass[1]);
    for (auto encoding : {strqubo::RegexClassEncoding::kPaperAveraged,
                          strqubo::RegexClassEncoding::kOneHotSelectors}) {
      const Outcome outcome = run(klass, encoding);
      std::cout << "[" << klass << "]  " << std::setw(7) << d << "  "
                << std::setw(9)
                << (encoding == strqubo::RegexClassEncoding::kPaperAveraged
                        ? "averaged"
                        : "one-hot")
                << "  " << std::setw(17) << std::fixed << std::setprecision(3)
                << outcome.invalid_char_rate << "  " << std::setw(7)
                << outcome.success_rate << '\n';
    }
  }
  std::cout << "\nExpected shape: averaged invalid rate grows with hamming "
               "distance; one-hot stays near 0.\n";
  return 0;
}

// E12 — topology comparison: the same logical QUBO minor-embedded onto
// Chimera, king-lattice, grid, and ideal complete hardware graphs.
//
// Expected shape: richer connectivity means shorter chains and fewer
// physical qubits (complete: all chains length 1), and logical success at
// fixed annealing effort improves as chains shrink; the sparse grid pays
// the longest chains.
#include <iomanip>
#include <iostream>

#include "anneal/exact.hpp"
#include "graph/chimera.hpp"
#include "graph/embedded_sampler.hpp"
#include "graph/topologies.hpp"
#include "strqubo/builders.hpp"

namespace {

using namespace qsmt;

void run_row(const std::string& label, const graph::Graph& target,
             const qubo::QuboModel& model, double ground) {
  graph::EmbeddedSamplerParams params;
  params.anneal.num_reads = 64;
  params.anneal.num_sweeps = 256;
  params.anneal.seed = 9;
  params.anneal.polish_with_greedy = false;
  params.embedding_seed = 9;
  params.embedding_attempts = 8;
  const graph::EmbeddedSampler sampler(target, params);

  std::cout << std::setw(16) << label << std::setw(9) << target.num_nodes();
  try {
    graph::EmbeddedSampleStats stats;
    const anneal::SampleSet samples = sampler.sample_with_stats(model, stats);
    std::cout << std::setw(10) << stats.physical_variables << std::setw(10)
              << stats.embedding.max_chain_length() << std::setw(12)
              << std::fixed << std::setprecision(4)
              << stats.chain_break_fraction << std::setw(9)
              << std::setprecision(3) << samples.success_fraction(ground)
              << '\n';
  } catch (const std::exception&) {
    std::cout << "  no embedding exists (planar target cannot host a K6-"
                 "minor)\n";
  }
}

}  // namespace

int main() {
  std::cout << "E12: one logical problem across hardware topologies\n\n";

  const auto model = strqubo::build_includes("abcabcab", "abc");
  const double ground = anneal::ExactSolver().ground_energy(model);
  std::cout << "logical model: includes('abcabcab','abc') — "
            << model.num_variables() << " vars, " << model.num_interactions()
            << " couplers (dense)\n\n";
  std::cout << std::setw(16) << "topology" << std::setw(9) << "qubits"
            << std::setw(10) << "physical" << std::setw(10) << "max_chain"
            << std::setw(12) << "break_frac" << std::setw(9) << "success"
            << '\n';
  std::cout << std::string(66, '-') << '\n';

  run_row("complete", graph::make_complete(8), model, ground);
  run_row("chimera(4,4,4)", graph::make_chimera(4, 4, 4), model, ground);
  run_row("king(8x8)", graph::make_king(8, 8), model, ground);
  run_row("grid(16x16)", graph::make_grid(16, 16), model, ground);

  std::cout << "\nExpected shape: complete embeds chain-free; chains grow "
               "(and success at fixed effort\ndrops) as connectivity thins. "
               "The plain grid is PLANAR, and K6 minors are not, so the\n"
               "dense includes model cannot embed there at all -- the "
               "topology, not the heuristic,\nis the limit (real annealer "
               "graphs are all non-planar for exactly this reason).\n";
  return 0;
}

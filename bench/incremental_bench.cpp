// Incremental bench: hot re-solve against fresh-driver re-solve over the
// same mutate-one-conjunct chain.
//
// The workload is the editing loop the incremental layer exists for: a
// stable base formula (length pin + suffix conjunct) and a sequence of
// rounds that each swap the prefix and middle-character conjuncts, then
// check twice (editors re-check after no-op edits). Every round's witness
// is fully forced by prefix + char-at + suffix, so the two configurations
// must agree byte-for-byte on every verdict and model:
//
//   * warm: one persistent SmtDriver carries its SolveContext across the
//     whole chain — compiled fragments are reused, unchanged re-checks
//     re-verify the previous witness without sampling, and changed rounds
//     warm-start a small reverse-anneal pass from the last model before
//     falling back to the full-budget sampler;
//   * cold: every check constructs a fresh driver and replays the current
//     assertion set from scratch with the same full-budget simulated
//     annealer — the non-incremental baseline.
//
// Writes BENCH_incremental.json in the CWD (run from the repo root to
// refresh the tracked baseline). Acceptance bar: the warm chain must beat
// the cold chain by >= 3x end to end. `--smoke` runs a short parity-only
// pass without touching the tracked JSON — the CI gate.
#include <cstddef>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "anneal/simulated_annealer.hpp"
#include "smtlib/driver.hpp"
#include "smtlib/incremental.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace qsmt;

constexpr std::uint64_t kSeed = 41;

anneal::SimulatedAnnealerParams full_budget() {
  anneal::SimulatedAnnealerParams params;
  params.num_reads = 64;
  params.num_sweeps = 512;
  params.seed = kSeed;
  return params;
}

std::string base_script() {
  return "(set-logic QF_S)"
         "(declare-const x String)"
         "(assert (= (str.len x) 3))"
         "(assert (str.suffixof \"a\" x))";
}

struct Round {
  char prefix;
  char middle;
  std::string expected() const {
    return std::string{prefix, middle, 'a'};
  }
  std::string assumptions() const {
    return std::string("(str.prefixof \"") + prefix + "\" x) (= (str.at x 1) \"" +
           std::string(1, middle) + "\")";
  }
};

std::vector<Round> make_rounds(std::size_t count) {
  std::vector<Round> rounds;
  rounds.reserve(count);
  for (std::size_t r = 0; r < count; ++r) {
    rounds.push_back({static_cast<char>('a' + r % 3),
                      static_cast<char>('a' + r % 2)});
  }
  return rounds;
}

/// One sat record of one driver, reduced to "verdict:model".
std::string record_key(const smtlib::CheckSatRecord& record) {
  const char* verdict =
      record.status == smtlib::CheckSatStatus::kSat     ? "sat"
      : record.status == smtlib::CheckSatStatus::kUnsat ? "unsat"
                                                        : "unknown";
  return std::string(verdict) + ":" + record.model_value;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::size_t num_rounds = smoke ? 6 : 24;
  const std::vector<Round> rounds = make_rounds(num_rounds);
  const anneal::SimulatedAnnealer sampler(full_budget());

  // Warm chain: one driver, one context, assumptions mutate the formula.
  smtlib::SmtDriver warm_driver(sampler);
  Stopwatch warm_timer;
  warm_driver.run_script(base_script());
  for (const Round& round : rounds) {
    const std::string check =
        "(check-sat-assuming (" + round.assumptions() + "))";
    warm_driver.run_script(check);
    warm_driver.run_script(check);  // Unchanged re-check: witness reuse.
  }
  const double warm_seconds = warm_timer.elapsed_seconds();
  const std::vector<smtlib::CheckSatRecord> warm_history =
      warm_driver.history();
  const smtlib::IncrementalStats warm_stats =
      warm_driver.solve_context().stats();
  const smtlib::FragmentCache::Stats warm_fragments =
      warm_driver.solve_context().fragments().stats();

  // Cold chain: a fresh driver replays the mutated formula per check.
  std::vector<smtlib::CheckSatRecord> cold_history;
  Stopwatch cold_timer;
  for (const Round& round : rounds) {
    for (int repeat = 0; repeat < 2; ++repeat) {
      smtlib::SmtDriver fresh(sampler);
      fresh.run_script(base_script() +
                       "(check-sat-assuming (" + round.assumptions() + "))");
      cold_history.push_back(fresh.history().back());
    }
  }
  const double cold_seconds = cold_timer.elapsed_seconds();

  // Parity: every witness is forced, so verdicts AND models must match.
  std::size_t mismatches = 0;
  if (warm_history.size() != cold_history.size()) {
    std::cerr << "incremental_bench: FAIL history size mismatch\n";
    return 1;
  }
  for (std::size_t i = 0; i < warm_history.size(); ++i) {
    const std::string expected = "sat:" + rounds[i / 2].expected();
    const std::string warm_key = record_key(warm_history[i]);
    const std::string cold_key = record_key(cold_history[i]);
    if (warm_key != expected || cold_key != expected) {
      std::cerr << "incremental_bench: check " << i << " expected '"
                << expected << "' warm '" << warm_key << "' cold '"
                << cold_key << "'\n";
      ++mismatches;
    }
  }
  if (mismatches != 0) {
    std::cerr << "incremental_bench: FAIL " << mismatches
              << " parity mismatches\n";
    return 1;
  }

  const double speedup = cold_seconds / warm_seconds;
  std::cout << std::fixed << std::setprecision(4);
  std::cout << "incremental_bench: " << num_rounds << " rounds x 2 checks, "
            << "forced witnesses, full budget " << full_budget().num_reads
            << "x" << full_budget().num_sweeps << "\n";
  std::cout << "  cold (fresh driver/check): " << cold_seconds << " s\n";
  std::cout << "  warm (persistent context): " << warm_seconds << " s\n";
  std::cout << "  speedup:                   " << speedup << "x\n";
  std::cout << "  warm path: " << warm_stats.witness_reuses << " reuses, "
            << warm_stats.warm_starts << " warm starts ("
            << warm_stats.warm_hits << " hits), " << warm_stats.cold_starts
            << " cold; fragments " << warm_fragments.hits << " hits / "
            << warm_fragments.misses << " misses\n";

  if (smoke) {
    std::cout << "incremental_bench: SMOKE PASS (" << warm_history.size()
              << " checks, byte parity, no timing gate)\n";
    return 0;
  }

  const char* gate = speedup >= 3.0 ? "pass" : "fail";
  std::ofstream out("BENCH_incremental.json");
  out << std::fixed << std::setprecision(4);
  out << "{\n"
      << "  \"num_rounds\": " << num_rounds << ",\n"
      << "  \"checks_per_side\": " << warm_history.size() << ",\n"
      << "  \"full_budget_reads\": " << full_budget().num_reads << ",\n"
      << "  \"full_budget_sweeps\": " << full_budget().num_sweeps << ",\n"
      << "  \"gate\": \"" << gate << "\",\n"
      << "  \"cold_seconds\": " << cold_seconds << ",\n"
      << "  \"warm_seconds\": " << warm_seconds << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"witness_reuses\": " << warm_stats.witness_reuses << ",\n"
      << "  \"warm_starts\": " << warm_stats.warm_starts << ",\n"
      << "  \"warm_hits\": " << warm_stats.warm_hits << ",\n"
      << "  \"cold_starts\": " << warm_stats.cold_starts << ",\n"
      << "  \"fragment_hits\": " << warm_fragments.hits << ",\n"
      << "  \"fragment_misses\": " << warm_fragments.misses << "\n"
      << "}\n";
  std::cout << "incremental_bench: wrote BENCH_incremental.json (gate "
            << gate << ")\n";
  return gate[0] == 'p' ? 0 : 1;
}

// Quantum-path bench: the three wins of the quantum hot-path overhaul,
// measured against the shipped predecessors.
//
//   1. PIMC kernel: incremental-field sweeps (anneal/pimc.cpp) vs the
//      pre-overhaul kernel kept verbatim as detail::pimc_sample_reference —
//      aggregate sweep throughput at num_slices=16 over the workload mix
//      must be >= 3x with the best energy identical on every workload (both
//      kernels keep finding the ground states; only the cost per sweep
//      changed).
//   2. Minor-embedding: cold find_embedding vs a warm structure-keyed
//      EmbeddingCache hit for the same logical graph.
//   3. Portfolio: win-rates of the default sa-only race vs quantum_portfolio
//      (sa-fast / pimc-light / embedded with a shared embedding cache) on a
//      quantum-friendly constraint batch — the quantum lanes must win at
//      least one race, retiring BENCH_service.json's sa_fast_wins: 48/48.
//
// Writes BENCH_quantum.json in the CWD (run from the repo root to refresh
// the tracked baseline). `--smoke` runs a seconds-scale correctness pass
// (identical energies, warm cache hit) without perf thresholds or JSON for
// scripts/ci.sh.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "anneal/pimc.hpp"
#include "graph/chimera.hpp"
#include "graph/embedded_sampler.hpp"
#include "graph/embedding_cache.hpp"
#include "service/service.hpp"
#include "strqubo/builders.hpp"
#include "strqubo/constraint.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace qsmt;

qubo::QuboModel random_model(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed, 77);
  qubo::QuboModel model(n);
  for (std::size_t i = 0; i < n; ++i)
    model.add_linear(i, rng.uniform() * 2.0 - 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < 0.4)
        model.add_quadratic(i, j, rng.uniform() * 2.0 - 1.0);
    }
  }
  return model;
}

struct KernelRow {
  std::string name;
  std::size_t num_variables = 0;
  double reference_seconds = 0.0;
  double incremental_seconds = 0.0;
  double speedup = 0.0;
  double reference_energy = 0.0;
  double incremental_energy = 0.0;
  bool energies_identical = false;
};

template <typename F>
double min_seconds(std::size_t reps, F&& run) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    Stopwatch timer;
    run();
    best = std::min(best, timer.elapsed_seconds());
  }
  return best;
}

KernelRow bench_kernel(const std::string& name, const qubo::QuboModel& model,
                       std::size_t sweeps, std::size_t reps) {
  anneal::PathIntegralParams params;
  params.num_reads = 8;
  params.num_sweeps = sweeps;
  params.num_slices = 16;
  params.seed = 5;

  KernelRow row;
  row.name = name;
  row.num_variables = model.num_variables();

  anneal::SampleSet reference;
  row.reference_seconds = min_seconds(reps, [&] {
    reference = anneal::detail::pimc_sample_reference(model, params);
  });
  anneal::SampleSet incremental;
  row.incremental_seconds = min_seconds(reps, [&] {
    incremental = anneal::PathIntegralAnnealer(params).sample(model);
  });

  row.speedup = row.reference_seconds / row.incremental_seconds;
  row.reference_energy = reference.lowest_energy();
  row.incremental_energy = incremental.lowest_energy();
  row.energies_identical = row.reference_energy == row.incremental_energy;
  return row;
}

struct WinTable {
  std::size_t jobs = 0;
  std::size_t sa_wins = 0;
  std::size_t pimc_wins = 0;
  std::size_t embedded_wins = 0;
  std::size_t undecided = 0;
};

WinTable race(std::vector<service::PortfolioMember> portfolio,
              const std::vector<strqubo::Constraint>& constraints) {
  service::ServiceOptions options;
  options.num_workers = 8;
  options.portfolio = std::move(portfolio);
  service::SolveService service(options);
  service::JobOptions job;
  job.seed = 19;
  WinTable table;
  table.jobs = constraints.size();
  for (const auto& result : service.solve_constraints(constraints, job)) {
    if (result.winner.rfind("sa", 0) == 0) {
      ++table.sa_wins;
    } else if (result.winner.rfind("pimc", 0) == 0) {
      ++table.pimc_wins;
    } else if (result.winner.rfind("embedded", 0) == 0) {
      ++table.embedded_wins;
    } else {
      ++table.undecided;
    }
  }
  return table;
}

// Quantum-friendly batch: small, heavily degenerate ground-state manifolds
// (palindromes, substring placements, regexes) with repeated graph shapes so
// the embedded lane's shared cache warms up — the structure Abel et al.
// exploit on hardware annealers.
std::vector<strqubo::Constraint> quantum_workloads(std::size_t copies) {
  std::vector<strqubo::Constraint> batch;
  for (std::size_t c = 0; c < copies; ++c) {
    batch.push_back(strqubo::Palindrome{3});
    batch.push_back(strqubo::Palindrome{4});
    batch.push_back(strqubo::SubstringMatch{4, "ab"});
    batch.push_back(strqubo::RegexMatch{"[ab]+", 4});
    batch.push_back(strqubo::Reverse{"hi"});
    batch.push_back(strqubo::Equality{"hey"});
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::size_t sweeps = smoke ? 64 : 256;
  const std::size_t reps = smoke ? 1 : 3;

  // --- 1. PIMC kernel: reference vs incremental-field. -------------------
  // Throughput is gated on the aggregate over the whole workload mix:
  // spin-glass instances at increasing size/degree (the canonical PIMC
  // benchmark family — Martoňák et al. — and the regime the incremental
  // fields target, since the old kernel's per-proposal adjacency walk and
  // O(n·deg·slices) global pass scale with degree) alongside small string
  // QUBOs, whose low gadget degree bounds their individual speedup but
  // which pin the best-energy parity the overhaul promises.
  std::vector<KernelRow> rows;
  rows.push_back(
      bench_kernel("random_n16", random_model(16, 1), sweeps, reps));
  if (!smoke) {
    rows.push_back(
        bench_kernel("random_n32", random_model(32, 2), sweeps, reps));
    rows.push_back(
        bench_kernel("random_n48", random_model(48, 3), sweeps, reps));
    rows.push_back(
        bench_kernel("random_n64", random_model(64, 4), sweeps, reps));
  } else {
    rows.push_back(
        bench_kernel("random_n24", random_model(24, 2), sweeps, reps));
  }
  rows.push_back(
      bench_kernel("palindrome_4", strqubo::build_palindrome(4), sweeps, reps));
  if (!smoke) {
    rows.push_back(
        bench_kernel("equality_hi", strqubo::build_equality("hi"), sweeps, reps));
  }

  std::cout << std::fixed << std::setprecision(3);
  std::cout << "quantum_bench: PIMC kernel, 8 reads x " << sweeps
            << " sweeps x 16 slices\n";
  bool kernel_ok = true;
  double reference_total = 0.0;
  double incremental_total = 0.0;
  for (const KernelRow& row : rows) {
    std::cout << "  " << row.name << " (n=" << row.num_variables
              << "): reference " << row.reference_seconds * 1e3
              << " ms, incremental " << row.incremental_seconds * 1e3
              << " ms, speedup " << row.speedup << "x, best energy "
              << row.incremental_energy
              << (row.energies_identical ? " (identical)" : " (MISMATCH)")
              << "\n";
    kernel_ok = kernel_ok && row.energies_identical;
    reference_total += row.reference_seconds;
    incremental_total += row.incremental_seconds;
  }
  const double aggregate_speedup = reference_total / incremental_total;
  std::cout << "  aggregate sweep throughput: " << aggregate_speedup
            << "x\n";

  // --- 2. Embedding: cold search vs warm cache hit. ----------------------
  const graph::Graph target = graph::make_chimera(8, 8, 4);
  const graph::Graph logical =
      graph::logical_graph(strqubo::build_palindrome(smoke ? 3 : 4));
  std::optional<graph::Embedding> cold_embedding;
  const double cold_seconds = min_seconds(reps, [&] {
    cold_embedding = graph::find_embedding(logical, target, 7, 4);
  });
  graph::EmbeddingCache cache;
  cache.insert(logical, *cold_embedding);
  std::optional<graph::Embedding> warm_embedding;
  const double warm_seconds =
      min_seconds(reps, [&] { warm_embedding = cache.lookup(logical); });
  const bool warm_ok = warm_embedding.has_value() &&
                       warm_embedding->chains == cold_embedding->chains;
  std::cout << "quantum_bench: embedding (chimera 8x8x4, "
            << logical.num_nodes() << " logical vars)\n"
            << "  cold find_embedding: " << cold_seconds * 1e6 << " us\n"
            << "  warm cache hit:      " << warm_seconds * 1e6 << " us ("
            << cold_seconds / std::max(warm_seconds, 1e-9) << "x, "
            << (warm_ok ? "bit-identical" : "MISMATCH") << ")\n";

  // --- 3. Portfolio win-rates: sa-only vs quantum-inclusive. -------------
  const auto batch = quantum_workloads(smoke ? 1 : 6);
  const WinTable before = race(service::default_portfolio(), batch);
  const WinTable after = race(service::quantum_portfolio(target), batch);
  const std::size_t non_sa_wins = after.pimc_wins + after.embedded_wins;
  std::cout << "quantum_bench: portfolio win-rates over " << batch.size()
            << " quantum-friendly jobs\n"
            << "  before (sa-fast/sa-deep):          sa " << before.sa_wins
            << ", undecided " << before.undecided << "\n"
            << "  after  (sa-fast/pimc-light/embedded): sa " << after.sa_wins
            << ", pimc " << after.pimc_wins << ", embedded "
            << after.embedded_wins << ", undecided " << after.undecided
            << "\n";

  if (!smoke) {
    std::ofstream out("BENCH_quantum.json");
    out << std::fixed << std::setprecision(6);
    out << "{\n  \"pimc_kernel\": {\n"
        << "    \"num_reads\": 8,\n    \"num_sweeps\": " << sweeps
        << ",\n    \"num_slices\": 16,\n    \"workloads\": [\n";
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const KernelRow& row = rows[k];
      out << "      {\"name\": \"" << row.name
          << "\", \"num_variables\": " << row.num_variables
          << ", \"reference_seconds\": " << row.reference_seconds
          << ", \"incremental_seconds\": " << row.incremental_seconds
          << ", \"speedup\": " << row.speedup
          << ", \"best_energy\": " << row.incremental_energy
          << ", \"energies_identical\": "
          << (row.energies_identical ? "true" : "false") << "}"
          << (k + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "    ],\n    \"aggregate_speedup\": " << aggregate_speedup
        << "\n  },\n";
    out << "  \"embedding\": {\n"
        << "    \"target\": \"chimera_8x8x4\",\n"
        << "    \"logical_variables\": " << logical.num_nodes() << ",\n"
        << "    \"cold_find_embedding_seconds\": " << cold_seconds << ",\n"
        << "    \"warm_cache_hit_seconds\": " << warm_seconds << ",\n"
        << "    \"bit_identical\": " << (warm_ok ? "true" : "false")
        << "\n  },\n";
    out << "  \"portfolio\": {\n    \"jobs\": " << batch.size() << ",\n"
        << "    \"before\": {\"sa_wins\": " << before.sa_wins
        << ", \"non_sa_wins\": 0, \"undecided\": " << before.undecided
        << "},\n"
        << "    \"after\": {\"sa_wins\": " << after.sa_wins
        << ", \"pimc_wins\": " << after.pimc_wins
        << ", \"embedded_wins\": " << after.embedded_wins
        << ", \"non_sa_wins\": " << non_sa_wins
        << ", \"undecided\": " << after.undecided << "}\n  }\n}\n";
  }

  // Correctness gates apply in every mode; perf gates only in full mode
  // (CI smoke machines are noisy and share cores).
  bool ok = kernel_ok && warm_ok;
  if (!kernel_ok) std::cerr << "quantum_bench: FAIL best-energy mismatch\n";
  if (!warm_ok) std::cerr << "quantum_bench: FAIL warm cache mismatch\n";
  if (!smoke) {
    if (aggregate_speedup < 3.0) {
      std::cerr << "quantum_bench: FAIL aggregate kernel speedup "
                << aggregate_speedup << "x < 3x\n";
      ok = false;
    }
    if (non_sa_wins == 0) {
      std::cerr << "quantum_bench: FAIL no non-SA portfolio win\n";
      ok = false;
    }
  }
  if (ok) std::cout << "quantum_bench: PASS\n";
  return ok ? 0 : 1;
}

// E8 — SMT front-end latency: end-to-end check-sat time as the assertion
// count grows, for conjunctive queries (merged-QUBO path) and disjunctive
// queries (DPLL(T) path).
//
// Expected shape: conjunctive latency is dominated by one annealer call and
// grows mildly with the merged model's density; DPLL(T) latency grows with
// the number of boolean models the theory solver must reject.
#include <benchmark/benchmark.h>

#include <sstream>

#include "anneal/simulated_annealer.hpp"
#include "sat/dpllt.hpp"
#include "smtlib/driver.hpp"
#include "smtlib/parser.hpp"

namespace {

using namespace qsmt;

anneal::SimulatedAnnealer make_annealer() {
  anneal::SimulatedAnnealerParams params;
  params.num_reads = 32;
  params.num_sweeps = 256;
  params.seed = 55;
  return anneal::SimulatedAnnealer(params);
}

std::string conjunctive_script(std::size_t num_assertions) {
  std::ostringstream script;
  script << "(declare-const x String)\n(assert (= (str.len x) 8))\n";
  const char* substrings[] = {"ab", "ba", "aa", "bb"};
  for (std::size_t i = 0; i + 1 < num_assertions; ++i) {
    script << "(assert (str.contains x \"" << substrings[i % 4] << "\"))\n";
  }
  script << "(check-sat)\n";
  return script.str();
}

void BM_ConjunctiveCheckSat(benchmark::State& state) {
  const auto annealer = make_annealer();
  const std::string script =
      conjunctive_script(static_cast<std::size_t>(state.range(0)));
  std::size_t sat = 0;
  std::size_t total = 0;
  for (auto _ : state) {
    smtlib::SmtDriver driver(annealer);
    const std::string out = driver.run_script(script);
    benchmark::DoNotOptimize(out.size());
    sat += driver.history().back().status == smtlib::CheckSatStatus::kSat;
    ++total;
  }
  state.counters["sat_rate"] =
      total == 0 ? 0.0 : static_cast<double>(sat) / static_cast<double>(total);
}

void BM_ParseOnly(benchmark::State& state) {
  const std::string script =
      conjunctive_script(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto commands = smtlib::parse_script(script);
    benchmark::DoNotOptimize(commands.size());
  }
}

void BM_DpllTDisjunctions(benchmark::State& state) {
  const auto annealer = make_annealer();
  const auto branches = static_cast<std::size_t>(state.range(0));
  // (or (= x "w0") (= x "w1") ...) with all but the last branch negated.
  std::ostringstream script;
  script << "(declare-const x String)\n(assert (or";
  for (std::size_t b = 0; b < branches; ++b) {
    script << " (= x \"w" << b << "\")";
  }
  script << "))\n";
  for (std::size_t b = 0; b + 1 < branches; ++b) {
    script << "(assert (not (= x \"w" << b << "\")))\n";
  }

  std::vector<smtlib::TermPtr> assertions;
  std::map<std::string, smtlib::Sort> declared;
  for (const auto& command : smtlib::parse_script(script.str())) {
    if (const auto* decl = std::get_if<smtlib::DeclareConst>(&command)) {
      declared.emplace(decl->name, decl->sort);
    } else if (const auto* a = std::get_if<smtlib::AssertCmd>(&command)) {
      assertions.push_back(a->term);
    }
  }

  const sat::DpllTSolver solver(annealer);
  std::size_t rounds = 0;
  for (auto _ : state) {
    const auto result = solver.solve(assertions, declared);
    benchmark::DoNotOptimize(result.status);
    rounds = result.theory_rounds;
  }
  state.counters["theory_rounds"] = static_cast<double>(rounds);
}

}  // namespace

BENCHMARK(BM_ConjunctiveCheckSat)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParseOnly)->DenseRange(1, 4)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DpllTDisjunctions)
    ->DenseRange(2, 6, 2)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();

// E1 — scaling study: QUBO build time and annealer solve time / success
// rate versus string length, for a generating (equality), a structural
// (palindrome), and a regex constraint.
//
// Expected shape: build time grows linearly in n for diagonal formulations
// (7n entries) and linearly for palindrome (7·n/2 gadgets); SA solve time
// grows with n · sweeps; success on diagonal models stays ~1.0 while the
// quadratic palindrome landscape degrades slowly with n.
#include <benchmark/benchmark.h>

#include "anneal/simulated_annealer.hpp"
#include "strqubo/solver.hpp"

namespace {

using namespace qsmt;

std::string letters(std::size_t n) {
  std::string s(n, 'a');
  for (std::size_t i = 0; i < n; ++i)
    s[i] = static_cast<char>('a' + (i * 7) % 26);
  return s;
}

strqubo::Constraint scaled_constraint(const std::string& kind, std::size_t n) {
  if (kind == "equality") return strqubo::Equality{letters(n)};
  if (kind == "palindrome") return strqubo::Palindrome{n};
  return strqubo::RegexMatch{"a[bc]+", n};
}

template <typename... Args>
void BM_Build(benchmark::State& state, Args&&... args) {
  const std::string kind = std::get<0>(std::make_tuple(args...));
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto constraint = scaled_constraint(kind, n);
  for (auto _ : state) {
    const auto model = strqubo::build(constraint);
    benchmark::DoNotOptimize(model.num_variables());
  }
  state.counters["qubo_vars"] =
      static_cast<double>(strqubo::constraint_num_variables(constraint));
}

template <typename... Args>
void BM_Solve(benchmark::State& state, Args&&... args) {
  const std::string kind = std::get<0>(std::make_tuple(args...));
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto constraint = scaled_constraint(kind, n);

  anneal::SimulatedAnnealerParams params;
  params.num_reads = 32;
  params.num_sweeps = 256;
  params.seed = 99;
  const anneal::SimulatedAnnealer annealer(params);
  const strqubo::StringConstraintSolver solver(annealer);

  std::size_t solved = 0;
  std::size_t total = 0;
  for (auto _ : state) {
    const auto result = solver.solve(constraint);
    benchmark::DoNotOptimize(result.energy);
    solved += result.satisfied ? 1 : 0;
    ++total;
  }
  state.counters["success_rate"] =
      total == 0 ? 0.0
                 : static_cast<double>(solved) / static_cast<double>(total);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Build, equality, std::string("equality"))
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Build, palindrome, std::string("palindrome"))
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Build, regex, std::string("regex"))
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_CAPTURE(BM_Solve, equality, std::string("equality"))
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Solve, palindrome, std::string("palindrome"))
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Solve, regex, std::string("regex"))
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();

// E7 — penalty-strength ablation for the includes formulation (§4.4):
// sweeping the one-hot pairwise penalty B (relative to A = 1) and the
// selection-cost θ, reporting how often the exact ground state and the
// annealer's decoded answer give the correct first-match position.
//
// Expected shape: with θ = 0 (the paper's literal objective) small B lets
// multi-selection or spurious selections win; with the auto θ = A(m - 1/2)
// the formulation is correct for every B above a small floor.
#include <iomanip>
#include <iostream>

#include "anneal/exact.hpp"
#include "anneal/simulated_annealer.hpp"
#include "strqubo/solver.hpp"
#include "strqubo/verify.hpp"

namespace {

using namespace qsmt;

struct Instance {
  std::string text;
  std::string substring;
};

const std::vector<Instance>& instances() {
  static const std::vector<Instance> kInstances{
      {"hello world", "world"}, {"abcabcab", "abc"}, {"xxcatcat", "cat"},
      {"aaaa", "aa"},           {"zzzzzz", "ab"},    {"say hi hi", "hi"}};
  return kInstances;
}

double correctness(double b_over_a, bool paper_literal_theta,
                   const anneal::Sampler& sampler) {
  strqubo::BuildOptions options;
  options.one_hot_penalty = b_over_a;
  if (paper_literal_theta) options.includes_selection_cost = 0.0;

  // Deliberately decode only the single lowest-energy sample (no
  // verified-sample rescue scan): this measures whether the FORMULATION's
  // ground state is the right answer, which is what the B and θ knobs
  // control.
  std::size_t correct = 0;
  for (const Instance& instance : instances()) {
    const strqubo::Includes constraint{instance.text, instance.substring};
    const auto model = strqubo::build(constraint, options);
    const auto samples = sampler.sample(model);
    const auto position =
        strqubo::decode_includes_position(samples.best().bits);
    if (strqubo::verify_position(constraint, position)) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(instances().size());
}

}  // namespace

int main() {
  std::cout << "E7: includes one-hot penalty sweep (B/A) under the paper's "
               "literal objective (theta=0)\nvs the corrected selection-cost "
               "objective (theta=A(m-1/2)); fraction of instances whose\n"
               "decoded position equals the classical first match.\n\n";

  anneal::SimulatedAnnealerParams params;
  params.num_reads = 64;
  params.num_sweeps = 256;
  params.seed = 13;
  const anneal::SimulatedAnnealer annealer(params);
  const anneal::ExactSolver exact;

  std::cout << "  B/A    theta=0 exact  theta=0 SA  theta=auto exact  "
               "theta=auto SA\n";
  std::cout << std::string(66, '-') << '\n';
  for (double b : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    std::cout << std::setw(5) << std::fixed << std::setprecision(1) << b
              << "  " << std::setw(13) << std::setprecision(3)
              << correctness(b, true, exact) << "  " << std::setw(10)
              << correctness(b, true, annealer) << "  " << std::setw(16)
              << correctness(b, false, exact) << "  " << std::setw(13)
              << correctness(b, false, annealer) << '\n';
  }
  std::cout << "\nExpected shape: theta=0 columns stay below 1.0 (no-match "
               "instances are undecidable\nand weak B admits spurious "
               "selections); theta=auto columns reach 1.0 once B "
               "exceeds ~A.\n";
  return 0;
}

// Server bench: end-to-end daemon throughput against the in-process batch
// path over the same generated workload.
//
// Three configurations solve the identical script list with the default
// sa-fast/sa-deep portfolio on an 8-worker pool:
//
//   * in-process: service.solve_scripts — the PR3 batch entry point and
//     the ceiling the daemon is measured against (no sockets, no framing,
//     no per-session driver);
//   * server x1: one socket connection replaying the scripts one request
//     frame at a time (reset between scripts) — pays the full protocol
//     cost with zero overlap;
//   * server x8: the scripts partitioned round-robin across 8 concurrent
//     connections — admission-gated fair sharing of the same pool, where
//     sibling sessions overlap their solves and structure-identical jobs
//     fuse.
//
// Writes BENCH_server.json in the CWD (run from the repo root to refresh
// the tracked baseline). The acceptance bar: 8 concurrent connections
// must out-run the single connection by >= 1.5x on any multi-core host.
// `--smoke` runs a small correctness pass (every reply a verdict, both
// transports agree) without touching the tracked JSON — the CI gate.
#include <atomic>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "server/server.hpp"
#include "service/service.hpp"
#include "telemetry/telemetry.hpp"
#include "util/stopwatch.hpp"
#include "workload/generator.hpp"
#include "workload/smt2_render.hpp"

namespace {

using namespace qsmt;

constexpr std::size_t kNumWorkers = 8;
constexpr std::size_t kNumConnections = 8;
constexpr std::uint64_t kSeed = 29;

std::vector<std::string> make_scripts(std::size_t count) {
  workload::GeneratorParams params;
  params.min_length = 2;
  params.max_length = 6;
  params.seed = kSeed;
  workload::Generator generator(params);
  std::vector<std::string> scripts;
  while (scripts.size() < count) {
    if (auto script = workload::to_smt2(generator.next())) {
      scripts.push_back(std::move(*script));
    }
  }
  return scripts;
}

/// The workload scripts end in (check-sat)(get-model): a healthy reply
/// leads with a verdict line, then the model (or a no-model error).
bool is_verdict(const std::string& reply) {
  return reply.rfind("sat\n", 0) == 0 || reply.rfind("unsat\n", 0) == 0 ||
         reply.rfind("unknown\n", 0) == 0;
}

/// Replays `scripts` striped across `num_clients` concurrent socket
/// connections; returns the number of replies that were not verdicts.
std::size_t replay_over_sockets(std::uint16_t port,
                                const std::vector<std::string>& scripts,
                                std::size_t num_clients) {
  std::atomic<std::size_t> bad{0};
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      server::Client client;
      client.connect(port);
      for (std::size_t i = c; i < scripts.size(); i += num_clients) {
        if (!is_verdict(client.request(scripts[i]))) bad.fetch_add(1);
        client.request("(reset)");
      }
      client.request("(exit)");
    });
  }
  for (std::thread& client : clients) client.join();
  return bad.load();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::size_t num_scripts = smoke ? 8 : 48;
  const std::vector<std::string> scripts = make_scripts(num_scripts);
  telemetry::set_mode(telemetry::Mode::kSummary);

  // In-process ceiling: the batch entry point on the same pool shape.
  service::ServiceOptions pool_options;
  pool_options.num_workers = kNumWorkers;
  service::SolveService pool(pool_options);
  service::JobOptions job;
  job.seed = kSeed;
  Stopwatch inprocess_timer;
  const std::vector<service::JobResult> batch =
      pool.solve_scripts(scripts, job);
  const double inprocess_seconds = inprocess_timer.elapsed_seconds();
  std::size_t batch_unknowns = 0;
  for (const service::JobResult& result : batch) {
    if (result.status == smtlib::CheckSatStatus::kUnknown) ++batch_unknowns;
  }

  // The daemon under test: same worker count, default admission bounds.
  server::ServerOptions options;
  options.service.num_workers = kNumWorkers;
  options.seed = kSeed;
  server::Server node(options);
  const std::uint16_t port = node.listen(0);
  node.start();

  Stopwatch serial_timer;
  const std::size_t serial_bad = replay_over_sockets(port, scripts, 1);
  const double serial_seconds = serial_timer.elapsed_seconds();

  Stopwatch concurrent_timer;
  const std::size_t concurrent_bad =
      replay_over_sockets(port, scripts, kNumConnections);
  const double concurrent_seconds = concurrent_timer.elapsed_seconds();

  node.shutdown();
  const server::Server::Stats stats = node.stats();

  const double inprocess_jps =
      static_cast<double>(scripts.size()) / inprocess_seconds;
  const double serial_jps =
      static_cast<double>(scripts.size()) / serial_seconds;
  const double concurrent_jps =
      static_cast<double>(scripts.size()) / concurrent_seconds;
  const double scaling = concurrent_jps / serial_jps;
  const double daemon_overhead = concurrent_jps / inprocess_jps;

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "server_bench: " << scripts.size() << " scripts, "
            << kNumWorkers << " workers, default portfolio\n";
  std::cout << "  in-process solve_scripts: " << inprocess_seconds << " s ("
            << inprocess_jps << " jobs/s)\n";
  std::cout << "  server, 1 connection:     " << serial_seconds << " s ("
            << serial_jps << " jobs/s)\n";
  std::cout << "  server, " << kNumConnections
            << " connections:    " << concurrent_seconds << " s ("
            << concurrent_jps << " jobs/s)\n";
  std::cout << "  concurrency scaling:      " << scaling << "x, vs in-process "
            << daemon_overhead << "x\n";

  if (serial_bad != 0 || concurrent_bad != 0) {
    std::cerr << "server_bench: FAIL " << (serial_bad + concurrent_bad)
              << " non-verdict replies\n";
    return 1;
  }
  if (stats.sessions_opened != stats.sessions_closed) {
    std::cerr << "server_bench: FAIL session leak (" << stats.sessions_opened
              << " opened, " << stats.sessions_closed << " closed)\n";
    return 1;
  }

  if (smoke) {
    // CI gate: correctness of the full socket path under concurrency, no
    // timing assertions (shared runners), no tracked-baseline refresh.
    std::cout << "server_bench: SMOKE PASS (" << scripts.size()
              << " scripts x 2 transports, verdicts only, no leaks)\n";
    return 0;
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const char* gate = hw < 2            ? "skipped_single_core_host"
                     : scaling >= 1.5 ? "pass"
                                      : "fail";

  std::ofstream out("BENCH_server.json");
  out << std::fixed << std::setprecision(4);
  out << "{\n"
      << "  \"num_scripts\": " << scripts.size() << ",\n"
      << "  \"num_workers\": " << kNumWorkers << ",\n"
      << "  \"num_connections\": " << kNumConnections << ",\n"
      << "  \"hardware_concurrency\": " << hw << ",\n"
      << "  \"gate\": \"" << gate << "\",\n"
      << "  \"inprocess_seconds\": " << inprocess_seconds << ",\n"
      << "  \"inprocess_jobs_per_second\": " << inprocess_jps << ",\n"
      << "  \"serial_seconds\": " << serial_seconds << ",\n"
      << "  \"serial_jobs_per_second\": " << serial_jps << ",\n"
      << "  \"concurrent_seconds\": " << concurrent_seconds << ",\n"
      << "  \"concurrent_jobs_per_second\": " << concurrent_jps << ",\n"
      << "  \"concurrency_scaling\": " << scaling << ",\n"
      << "  \"daemon_vs_inprocess\": " << daemon_overhead << ",\n"
      << "  \"batch_unknowns\": " << batch_unknowns << "\n"
      << "}\n";

  // The daemon exists to let many tenants share one pool; fail loudly if
  // concurrent connections stop out-running a single one. Like the
  // service gate, scaling is parallelism and only binds where some
  // exists: a single-core host can only interleave.
  if (hw < 2) {
    std::cout << "server_bench: gate skipped (single-core host; scaling "
              << scaling << "x not meaningful)\n";
    return 0;
  }
  if (scaling < 1.5) {
    std::cerr << "server_bench: FAIL scaling " << scaling << " < 1.5\n";
    return 1;
  }
  std::cout << "server_bench: PASS (>= 1.5x)\n";
  return 0;
}

// E10 — hardware-noise robustness: success rate of each formulation as the
// coefficient noise σ (relative to the largest |coefficient|, D-Wave
// "ICE"-style) grows.
//
// Expected shape: formulations whose ground state is separated by wide
// margins (equality: ±A per bit) tolerate several percent of noise;
// formulations that rely on thin margins (indexOf's 0.1A soft bias;
// includes' D = 0.5 first-match increments) lose their answers first.
#include <iomanip>
#include <iostream>

#include "anneal/noise.hpp"
#include "anneal/simulated_annealer.hpp"
#include "strqubo/solver.hpp"

namespace {

using namespace qsmt;

double success_under_noise(const strqubo::Constraint& constraint,
                           double sigma) {
  std::size_t successes = 0;
  constexpr std::size_t kTrials = 12;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    anneal::SimulatedAnnealerParams params;
    params.num_reads = 48;
    params.num_sweeps = 384;
    params.seed = 900 + trial;
    const anneal::SimulatedAnnealer inner(params);
    anneal::NoisySamplerParams noise;
    noise.sigma = sigma;
    noise.seed = 7000 + trial;  // Fresh noise realisation per trial.
    const anneal::NoisySampler sampler(inner, noise);
    const strqubo::StringConstraintSolver solver(sampler);
    successes += solver.solve(constraint).satisfied ? 1 : 0;
  }
  return static_cast<double>(successes) / kTrials;
}

}  // namespace

int main() {
  std::cout << "E10: formulation robustness to hardware coefficient noise "
               "(sigma relative to max |coefficient|)\n\n";
  const std::vector<std::pair<std::string, strqubo::Constraint>> cases{
      {"equality('hello')", strqubo::Equality{"hello"}},
      {"palindrome(6)", strqubo::Palindrome{6}},
      {"indexOf('hi'@2, len 6)", strqubo::IndexOf{6, "hi", 2}},
      {"includes('abcabcab','abc')", strqubo::Includes{"abcabcab", "abc"}},
      {"regex a[bc]+ len 5", strqubo::RegexMatch{"a[bc]+", 5}},
  };

  std::cout << std::setw(28) << "formulation";
  for (double sigma : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    std::cout << "  s=" << std::setw(5) << std::fixed << std::setprecision(2)
              << sigma;
  }
  std::cout << '\n' << std::string(28 + 5 * 9, '-') << '\n';
  for (const auto& [label, constraint] : cases) {
    std::cout << std::setw(28) << label;
    for (double sigma : {0.0, 0.1, 0.25, 0.5, 1.0}) {
      std::cout << "  " << std::setw(7) << std::setprecision(2)
                << success_under_noise(constraint, sigma);
    }
    std::cout << '\n';
  }
  std::cout << "\nExpected shape: everything is solid through sigma ~0.1 "
               "(the verified-sample scan absorbs\nmild corruption); "
               "includes degrades first (its first-match increments D=0.5 "
               "are the thinnest\nmargin relative to its -3 match rewards); "
               "all formulations collapse as sigma approaches the\n"
               "coefficient scale.\n";
  return 0;
}

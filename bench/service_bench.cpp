// Service bench: batch throughput of the portfolio solve service against
// sequential engine::solve_scripts over the same generated workload.
//
// The sequential baseline is what applications did before src/service: one
// blocking solve_script per script with the default simulated annealer
// (64 reads x 256 sweeps). The service runs the same scripts on 8 workers
// with the default portfolio — a cheap sa-fast lane (16 reads x 64 sweeps)
// racing a deep sa-deep lane (64 reads x 512 sweeps), first verified
// verdict wins and cancels the loser. The speedup therefore has two
// independent sources, and the bench reports both configurations so each
// is visible:
//
//   * racing: sa-fast verifies the easy majority of jobs at a fraction of
//     the baseline's anneal budget, and cancellation reclaims the deep
//     lane's cycles — this pays even on a single-core host;
//   * the worker pool overlaps jobs across cores when there are any.
//
// Writes BENCH_service.json in the CWD (run from the repo root to refresh
// the tracked baseline). The acceptance bar for the serving layer is a
// >= 2x batch-throughput ratio at 8 workers.
#include <cstddef>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "anneal/simulated_annealer.hpp"
#include "engine/engine.hpp"
#include "service/service.hpp"
#include "smtlib/driver.hpp"
#include "util/stopwatch.hpp"
#include "workload/generator.hpp"
#include "workload/smt2_render.hpp"

namespace {

using namespace qsmt;

constexpr std::size_t kNumScripts = 48;
constexpr std::size_t kNumWorkers = 8;
constexpr std::uint64_t kSeed = 23;

std::vector<std::string> make_scripts() {
  workload::GeneratorParams params;
  params.min_length = 2;
  params.max_length = 6;
  params.seed = kSeed;
  workload::Generator generator(params);
  std::vector<std::string> scripts;
  while (scripts.size() < kNumScripts) {
    // Includes renders to nullopt (no free string variable); skip it so
    // both sides solve the identical script list.
    if (auto script = workload::to_smt2(generator.next())) {
      scripts.push_back(std::move(*script));
    }
  }
  return scripts;
}

std::size_t count_decided(const std::vector<engine::ScriptResult>& results) {
  std::size_t decided = 0;
  for (const engine::ScriptResult& result : results) {
    if (result.status != smtlib::CheckSatStatus::kUnknown) ++decided;
  }
  return decided;
}

std::size_t count_decided(const std::vector<service::JobResult>& results) {
  std::size_t decided = 0;
  for (const service::JobResult& result : results) {
    if (result.status != smtlib::CheckSatStatus::kUnknown) ++decided;
  }
  return decided;
}

}  // namespace

int main() {
  const std::vector<std::string> scripts = make_scripts();

  // Sequential baseline: default annealer, one solve_script at a time.
  Stopwatch sequential_timer;
  const anneal::SimulatedAnnealer annealer{{}};
  const std::vector<engine::ScriptResult> sequential =
      engine::solve_scripts(scripts, annealer);
  const double sequential_seconds = sequential_timer.elapsed_seconds();

  // Portfolio service: 8 workers, default sa-fast/sa-deep race.
  service::ServiceOptions options;
  options.num_workers = kNumWorkers;
  service::SolveService service(options);
  service::JobOptions job;
  job.seed = kSeed;
  Stopwatch service_timer;
  const std::vector<service::JobResult> raced =
      service.solve_scripts(scripts, job);
  const double service_seconds = service_timer.elapsed_seconds();

  const double sequential_jps =
      static_cast<double>(scripts.size()) / sequential_seconds;
  const double service_jps =
      static_cast<double>(scripts.size()) / service_seconds;
  const double ratio = service_jps / sequential_jps;

  std::size_t fast_wins = 0;
  std::size_t cancelled = service.stats().members_cancelled;
  for (const service::JobResult& result : raced) {
    if (result.winner == "sa-fast") ++fast_wins;
  }

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "service_bench: " << scripts.size() << " scripts, "
            << kNumWorkers << " workers, portfolio sa-fast/sa-deep\n";
  std::cout << "  sequential solve_scripts: " << sequential_seconds << " s ("
            << sequential_jps << " jobs/s, " << count_decided(sequential)
            << " decided)\n";
  std::cout << "  portfolio service:        " << service_seconds << " s ("
            << service_jps << " jobs/s, " << count_decided(raced)
            << " decided, " << fast_wins << " sa-fast wins, " << cancelled
            << " members cancelled)\n";
  std::cout << "  throughput ratio:         " << ratio << "x\n";

  std::ofstream out("BENCH_service.json");
  out << std::fixed << std::setprecision(4);
  out << "{\n"
      << "  \"num_scripts\": " << scripts.size() << ",\n"
      << "  \"num_workers\": " << kNumWorkers << ",\n"
      << "  \"sequential_seconds\": " << sequential_seconds << ",\n"
      << "  \"sequential_jobs_per_second\": " << sequential_jps << ",\n"
      << "  \"service_seconds\": " << service_seconds << ",\n"
      << "  \"service_jobs_per_second\": " << service_jps << ",\n"
      << "  \"throughput_ratio\": " << ratio << ",\n"
      << "  \"sa_fast_wins\": " << fast_wins << ",\n"
      << "  \"members_cancelled\": " << cancelled << "\n"
      << "}\n";

  // The serving layer exists to beat one-at-a-time solving; fail loudly
  // when the racing + pooling win disappears.
  if (ratio < 2.0) {
    std::cerr << "service_bench: FAIL ratio " << ratio << " < 2.0\n";
    return 1;
  }
  std::cout << "service_bench: PASS (>= 2x)\n";
  return 0;
}

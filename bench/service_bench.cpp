// Service bench: batch throughput of the portfolio solve service against
// sequential engine::solve_scripts over the same generated workload.
//
// The sequential baseline is what applications did before src/service: one
// blocking solve_script per script with the default simulated annealer
// (64 reads x 256 sweeps). The service runs the same scripts on 8 workers
// with the default portfolio — a cheap sa-fast lane (16 reads x 64 sweeps)
// racing a deep sa-deep lane (64 reads x 512 sweeps), first verified
// verdict wins and cancels the loser. The speedup therefore has two
// independent sources, and the bench reports both configurations so each
// is visible:
//
//   * racing: sa-fast verifies the easy majority of jobs at a fraction of
//     the baseline's anneal budget, and cancellation reclaims the deep
//     lane's cycles — this pays even on a single-core host;
//   * the worker pool overlaps jobs across cores when there are any.
//
// A third, single-member configuration (one sa lane at the baseline's
// budget) isolates pure pool overlap: with nobody racing, the winner's
// claim skips the per-job CancelSource broadcast entirely, so this is the
// no-race-scaffolding number operators should expect from `--exact`-style
// single-lane deployments.
//
// Writes BENCH_service.json in the CWD (run from the repo root to refresh
// the tracked baseline). The acceptance bar for the serving layer is a
// >= 2x batch-throughput ratio at 8 workers.
#include <cstddef>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "anneal/simulated_annealer.hpp"
#include "engine/engine.hpp"
#include "service/service.hpp"
#include "smtlib/driver.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"
#include "util/stopwatch.hpp"
#include "workload/generator.hpp"
#include "workload/smt2_render.hpp"

namespace {

using namespace qsmt;

constexpr std::size_t kNumScripts = 48;
constexpr std::size_t kNumWorkers = 8;
constexpr std::uint64_t kSeed = 23;

std::vector<std::string> make_scripts() {
  workload::GeneratorParams params;
  params.min_length = 2;
  params.max_length = 6;
  params.seed = kSeed;
  workload::Generator generator(params);
  std::vector<std::string> scripts;
  while (scripts.size() < kNumScripts) {
    // Includes renders to nullopt (no free string variable); skip it so
    // both sides solve the identical script list.
    if (auto script = workload::to_smt2(generator.next())) {
      scripts.push_back(std::move(*script));
    }
  }
  return scripts;
}

std::size_t count_decided(const std::vector<engine::ScriptResult>& results) {
  std::size_t decided = 0;
  for (const engine::ScriptResult& result : results) {
    if (result.status != smtlib::CheckSatStatus::kUnknown) ++decided;
  }
  return decided;
}

std::size_t count_decided(const std::vector<service::JobResult>& results) {
  std::size_t decided = 0;
  for (const service::JobResult& result : results) {
    if (result.status != smtlib::CheckSatStatus::kUnknown) ++decided;
  }
  return decided;
}

// Completed annealing reads so far, from the process-global summary
// counters. Both sides of the bench record through the same annealer
// hot path, so deltas of this counter give a like-for-like headline
// reads/second for each configuration.
std::uint64_t total_anneal_reads() {
  const telemetry::Snapshot snapshot = telemetry::registry().snapshot();
  const telemetry::CounterStat* reads = snapshot.counter("anneal.reads");
  return reads != nullptr ? reads->value : 0;
}

}  // namespace

int main() {
  const std::vector<std::string> scripts = make_scripts();
  // Summary mode is counters-only (no per-span tracing), so it leaves the
  // kAuto sweep-mode routing on the batched substrate and adds only a
  // relaxed-atomic increment per read.
  telemetry::set_mode(telemetry::Mode::kSummary);

  // Sequential baseline: default annealer, one solve_script at a time.
  const std::uint64_t reads_before_sequential = total_anneal_reads();
  Stopwatch sequential_timer;
  const anneal::SimulatedAnnealer annealer{{}};
  const std::vector<engine::ScriptResult> sequential =
      engine::solve_scripts(scripts, annealer);
  const double sequential_seconds = sequential_timer.elapsed_seconds();
  const std::uint64_t sequential_reads =
      total_anneal_reads() - reads_before_sequential;

  // Portfolio service: 8 workers, default sa-fast/sa-deep race.
  service::ServiceOptions options;
  options.num_workers = kNumWorkers;
  service::SolveService service(options);
  service::JobOptions job;
  job.seed = kSeed;
  const std::uint64_t reads_before_service = total_anneal_reads();
  Stopwatch service_timer;
  const std::vector<service::JobResult> raced =
      service.solve_scripts(scripts, job);
  const double service_seconds = service_timer.elapsed_seconds();
  const std::uint64_t service_reads =
      total_anneal_reads() - reads_before_service;

  // Single-member configuration: the same pool with a one-lane portfolio
  // (the sequential baseline's annealer budget). There is no race here, so
  // the service must not pay race scaffolding per job — the winner's
  // claim skips the CancelSource broadcast when nobody else is listening —
  // and the ratio over sequential isolates pure pool overlap.
  service::ServiceOptions solo_options;
  solo_options.num_workers = kNumWorkers;
  solo_options.portfolio = {service::simulated_annealing_member("sa-solo")};
  service::SolveService solo_service(solo_options);
  const std::uint64_t reads_before_solo = total_anneal_reads();
  Stopwatch solo_timer;
  const std::vector<service::JobResult> solo =
      solo_service.solve_scripts(scripts, job);
  const double solo_seconds = solo_timer.elapsed_seconds();
  const std::uint64_t solo_reads = total_anneal_reads() - reads_before_solo;

  const double sequential_rps =
      static_cast<double>(sequential_reads) / sequential_seconds;
  const double service_rps =
      static_cast<double>(service_reads) / service_seconds;
  const double solo_rps = static_cast<double>(solo_reads) / solo_seconds;
  const double solo_jps = static_cast<double>(scripts.size()) / solo_seconds;
  const double sequential_jps =
      static_cast<double>(scripts.size()) / sequential_seconds;
  const double service_jps =
      static_cast<double>(scripts.size()) / service_seconds;
  const double ratio = service_jps / sequential_jps;

  std::size_t fast_wins = 0;
  std::size_t cancelled = service.stats().members_cancelled;
  for (const service::JobResult& result : raced) {
    if (result.winner == "sa-fast") ++fast_wins;
  }

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "service_bench: " << scripts.size() << " scripts, "
            << kNumWorkers << " workers, portfolio sa-fast/sa-deep\n";
  std::cout << "  sequential solve_scripts: " << sequential_seconds << " s ("
            << sequential_jps << " jobs/s, " << sequential_rps
            << " reads/s, " << count_decided(sequential) << " decided)\n";
  std::cout << "  portfolio service:        " << service_seconds << " s ("
            << service_jps << " jobs/s, " << service_rps << " reads/s, "
            << count_decided(raced) << " decided, " << fast_wins
            << " sa-fast wins, " << cancelled << " members cancelled)\n";
  std::cout << "  single-member service:    " << solo_seconds << " s ("
            << solo_jps << " jobs/s, " << solo_rps << " reads/s, "
            << count_decided(solo) << " decided, no race scaffolding)\n";
  std::cout << "  throughput ratio:         " << ratio << "x\n";

  const unsigned hw = std::thread::hardware_concurrency();
  const char* gate = hw < 2              ? "skipped_single_core_host"
                     : ratio >= 2.0 ? "pass"
                                    : "fail";

  std::ofstream out("BENCH_service.json");
  out << std::fixed << std::setprecision(4);
  out << "{\n"
      << "  \"num_scripts\": " << scripts.size() << ",\n"
      << "  \"num_workers\": " << kNumWorkers << ",\n"
      << "  \"hardware_concurrency\": " << hw << ",\n"
      << "  \"gate\": \"" << gate << "\",\n"
      << "  \"sequential_seconds\": " << sequential_seconds << ",\n"
      << "  \"sequential_jobs_per_second\": " << sequential_jps << ",\n"
      << "  \"sequential_reads_per_second\": " << sequential_rps << ",\n"
      << "  \"service_seconds\": " << service_seconds << ",\n"
      << "  \"service_jobs_per_second\": " << service_jps << ",\n"
      << "  \"service_reads_per_second\": " << service_rps << ",\n"
      << "  \"single_member_seconds\": " << solo_seconds << ",\n"
      << "  \"single_member_jobs_per_second\": " << solo_jps << ",\n"
      << "  \"single_member_reads_per_second\": " << solo_rps << ",\n"
      << "  \"single_member_ratio\": " << solo_jps / sequential_jps << ",\n"
      << "  \"throughput_ratio\": " << ratio << ",\n"
      << "  \"sa_fast_wins\": " << fast_wins << ",\n"
      << "  \"members_cancelled\": " << cancelled << "\n"
      << "}\n";

  // The serving layer exists to beat one-at-a-time solving; fail loudly
  // when the racing + pooling win disappears. The gate measures
  // parallelism, so it only binds on hosts that have some: on a
  // single-core box the 8-worker pool can only interleave the
  // portfolio's redundant members and the ratio is noise, not signal.
  if (hw < 2) {
    std::cout << "service_bench: gate skipped (single-core host; ratio "
              << ratio << "x not meaningful)\n";
    return 0;
  }
  if (ratio < 2.0) {
    std::cerr << "service_bench: FAIL ratio " << ratio << " < 2.0\n";
    return 1;
  }
  std::cout << "service_bench: PASS (>= 2x)\n";
  return 0;
}

// E5 — classical baseline crossover: annealer-backed QUBO solving vs the
// classical baselines on the same constraints.
//
// Expected shape: the constructive DirectBaseline is orders of magnitude
// faster wherever it applies (these operations all have classical
// closed forms — the honest caveat the paper's framing needs); the
// EnumerationBaseline's cost explodes exponentially with length while the
// annealer's grows roughly linearly in QUBO size, so a crossover appears as
// the enumeration alphabet/length grows.
#include <benchmark/benchmark.h>

#include "anneal/simulated_annealer.hpp"
#include "baseline/classical.hpp"
#include "strqubo/solver.hpp"

namespace {

using namespace qsmt;

strqubo::Constraint workload(std::size_t n) {
  // A substring-match generation task: place "ab" in an n-char string.
  return strqubo::SubstringMatch{n, "ab"};
}

void BM_AnnealerQubo(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  anneal::SimulatedAnnealerParams params;
  params.num_reads = 32;
  params.num_sweeps = 256;
  params.seed = 3;
  const anneal::SimulatedAnnealer annealer(params);
  const strqubo::StringConstraintSolver solver(annealer);
  const auto constraint = workload(n);

  std::size_t solved = 0;
  std::size_t total = 0;
  for (auto _ : state) {
    const auto result = solver.solve(constraint);
    benchmark::DoNotOptimize(result.energy);
    solved += result.satisfied ? 1 : 0;
    ++total;
  }
  state.counters["success_rate"] =
      total == 0 ? 0.0
                 : static_cast<double>(solved) / static_cast<double>(total);
}

void BM_EnumerationBaseline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  baseline::EnumerationBaseline::Params params;
  params.alphabet = "abcdefgh";
  params.prune = false;  // The naive search the paper contrasts against.
  const baseline::EnumerationBaseline solver(params);
  // Worst case: the all-'h' target is the last candidate in DFS order, so
  // the unpruned search visits the entire |Σ|^n tree.
  const strqubo::Constraint constraint =
      strqubo::Equality{std::string(n, 'h')};

  std::uint64_t nodes = 0;
  for (auto _ : state) {
    const auto result = solver.solve(constraint);
    benchmark::DoNotOptimize(result.satisfied);
    nodes = result.nodes_explored;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}

void BM_EnumerationPruned(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  baseline::EnumerationBaseline::Params params;
  params.alphabet = "abcdefgh";
  params.prune = true;
  const baseline::EnumerationBaseline solver(params);
  const strqubo::Constraint constraint =
      strqubo::Equality{std::string(n, 'h')};

  std::uint64_t nodes = 0;
  for (auto _ : state) {
    const auto result = solver.solve(constraint);
    benchmark::DoNotOptimize(result.satisfied);
    nodes = result.nodes_explored;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}

void BM_DirectBaseline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const baseline::DirectBaseline solver;
  const auto constraint = workload(n);
  for (auto _ : state) {
    const auto result = solver.solve(constraint);
    benchmark::DoNotOptimize(result.satisfied);
  }
}

}  // namespace

BENCHMARK(BM_AnnealerQubo)->DenseRange(2, 8, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EnumerationBaseline)
    ->DenseRange(2, 8, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EnumerationPruned)
    ->DenseRange(2, 8, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DirectBaseline)->DenseRange(2, 8, 2)->Unit(benchmark::kNanosecond);

BENCHMARK_MAIN();

// Conformance study: sweeps the full 2^n spectrum of every registered
// encoding-conformance case (src/conformance/registry.cpp) and reports the
// three §4 properties per formulation — soundness, completeness over the
// documented ground domain, and the measured minimum gap against the
// per-op floor. Writes BENCH_conformance.json (in the CWD; run from the
// repo root so the tracked artifact gets refreshed in place).
//
// Expected shape: every case reports as_expected=true — exact formulations
// sound+complete, biased formulations sound+complete over their letter-band
// domains, and the §4.11 hamming-2 averaged-class negative control UNSOUND
// (that row failing to fail would mean the checker lost its teeth). The
// min_gap column is the quantity annealing success rides on (Bian et al.);
// the thinnest margins in the catalog are the 2*soft_weight floors of the
// length-printable / bounded-length family.
#include <fstream>
#include <iomanip>
#include <iostream>

#include "conformance/conformance.hpp"
#include "conformance/registry.hpp"

int main() {
  using namespace qsmt::conformance;

  std::cout << "Encoding conformance study — exhaustive spectrum sweeps\n\n";
  std::cout << std::left << std::setw(36) << "case" << std::right
            << std::setw(6) << "vars" << std::setw(10) << "states"
            << std::setw(11) << "ground" << std::setw(10) << "min_gap"
            << std::setw(7) << "floor" << "  S C G  verdict\n";
  std::cout << std::string(96, '-') << '\n';

  std::size_t failures = 0;
  std::string json = "{\"cases\": [\n";
  bool first = true;
  for (const ConformanceCase& c : all_cases()) {
    const ConformanceReport report = check_case(c);
    std::cout << std::left << std::setw(36) << report.name << std::right
              << std::setw(6) << report.num_variables << std::setw(10)
              << report.num_states << std::setw(11) << std::setprecision(3)
              << report.ground_energy << std::setw(10) << report.min_gap
              << std::setw(7) << report.gap_floor << "  "
              << (report.sound ? 'S' : '-') << ' '
              << (report.complete ? 'C' : '-') << ' '
              << (report.gap_safe ? 'G' : '-') << "  "
              << (report.as_expected ? "ok" : "UNEXPECTED");
    if (!c.expect_sound || !c.expect_complete) std::cout << " (neg control)";
    std::cout << '\n';
    if (!report.as_expected) {
      ++failures;
      for (const std::string& f : report.failures) {
        std::cout << "    ! " << f << '\n';
      }
    }
    if (!first) json += ",\n";
    json += "  " + report_json(report);
    first = false;
  }
  json += "\n]}\n";

  std::ofstream out("BENCH_conformance.json");
  out << json;
  std::cout << "\nwrote BENCH_conformance.json\n";
  if (failures != 0) {
    std::cout << failures << " case(s) deviated from expectations\n";
    return 1;
  }
  return 0;
}

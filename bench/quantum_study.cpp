// E3 — quantum-simulation study: path-integral Monte Carlo quantum
// annealing vs classical simulated annealing, success probability on
// palindrome instances as length and Trotter slice count vary.
//
// Both samplers run WITHOUT the greedy polish so the table reflects the raw
// annealing dynamics. Expected shape: both reach high success on small n;
// PIMC success improves with more Trotter slices (better quantum
// simulation) at proportional cost.
#include <iomanip>
#include <iostream>

#include "anneal/pimc.hpp"
#include "anneal/simulated_annealer.hpp"
#include "strqubo/builders.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace qsmt;

struct Row {
  std::size_t n;
  std::size_t slices;  // 0 = classical SA.
  double success;
  double seconds;
};

Row run_classical(std::size_t n) {
  const auto model = strqubo::build_palindrome(n);
  anneal::SimulatedAnnealerParams params;
  params.num_reads = 64;
  params.num_sweeps = 256;
  params.seed = 31;
  params.polish_with_greedy = false;
  const anneal::SimulatedAnnealer annealer(params);
  Stopwatch timer;
  const auto samples = annealer.sample(model);
  return Row{n, 0, samples.success_fraction(0.0), timer.elapsed_seconds()};
}

Row run_quantum(std::size_t n, std::size_t slices) {
  const auto model = strqubo::build_palindrome(n);
  anneal::PathIntegralParams params;
  params.num_reads = 64;
  params.num_sweeps = 256;
  params.num_slices = slices;
  params.seed = 31;
  params.polish_with_greedy = false;
  const anneal::PathIntegralAnnealer annealer(params);
  Stopwatch timer;
  const auto samples = annealer.sample(model);
  return Row{n, slices, samples.success_fraction(0.0),
             timer.elapsed_seconds()};
}

void print_row(const Row& row) {
  std::cout << std::setw(4) << row.n << "  " << std::setw(10)
            << (row.slices == 0 ? std::string("classical")
                                : "P=" + std::to_string(row.slices))
            << "  " << std::setw(9) << std::fixed << std::setprecision(3)
            << row.success << "  " << std::setw(9) << std::setprecision(4)
            << row.seconds << '\n';
}

}  // namespace

int main() {
  std::cout << "E3: quantum (PIMC) vs classical (SA) annealing on palindrome "
               "QUBOs\n";
  std::cout << "success = fraction of reads reaching the ground state "
               "(energy 0), no greedy polish\n\n";
  std::cout << "   n     sampler    success    seconds\n";
  std::cout << std::string(44, '-') << '\n';
  for (std::size_t n : {2, 4, 6, 8}) {
    print_row(run_classical(n));
    for (std::size_t slices : {8, 16, 32}) {
      print_row(run_quantum(n, slices));
    }
    std::cout << std::string(44, '-') << '\n';
  }
  return 0;
}

// E13 — time-to-solution analysis: the standard annealing-performance
// metric. For a per-read success probability p and per-read time t,
//   TTS(0.99) = t * ln(1 - 0.99) / ln(1 - p)
// is the expected wall time to observe a solution with 99% confidence.
// Sweeping the sweep budget exposes the classic U-shape: too few sweeps
// and p collapses (TTS blows up on the repeat count); too many and each
// read overpays (TTS grows linearly) — the optimum sits between.
#include <cmath>
#include <iomanip>
#include <iostream>

#include "anneal/simulated_annealer.hpp"
#include "strenc/ascii7.hpp"
#include "strqubo/solver.hpp"
#include "strqubo/verify.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace qsmt;

struct Row {
  std::size_t sweeps;
  double per_read_success;
  double per_read_ms;
  double tts99_ms;  // Infinity when no read succeeded.
};

Row measure(const strqubo::Constraint& constraint, std::size_t sweeps,
            bool polish) {
  const auto model = strqubo::build(constraint);
  const std::size_t string_bits = strqubo::constraint_num_variables(constraint);

  anneal::SimulatedAnnealerParams params;
  params.num_reads = 256;
  params.num_sweeps = sweeps;
  params.seed = 77;
  params.polish_with_greedy = polish;
  const anneal::SimulatedAnnealer annealer(params);

  Stopwatch timer;
  const anneal::SampleSet samples = annealer.sample(model);
  const double total_ms = 1000.0 * timer.elapsed_seconds();
  const double per_read_ms = total_ms / static_cast<double>(params.num_reads);

  std::size_t successes = 0;
  for (const auto& s : samples) {
    const std::string decoded = strenc::decode_string(
        std::span(s.bits).subspan(0, string_bits));
    if (strqubo::verify_string(constraint, decoded)) {
      successes += s.num_occurrences;
    }
  }
  const double p =
      static_cast<double>(successes) / static_cast<double>(params.num_reads);

  double tts = std::numeric_limits<double>::infinity();
  if (p >= 1.0) {
    tts = per_read_ms;
  } else if (p > 0.0) {
    tts = per_read_ms * std::log(1.0 - 0.99) / std::log(1.0 - p);
  }
  return Row{sweeps, p, per_read_ms, tts};
}

void print_tts(double tts) {
  if (std::isinf(tts)) {
    std::cout << "      inf";
  } else {
    std::cout << std::setw(9) << std::fixed << std::setprecision(3) << tts;
  }
}

void run(const std::string& label, const strqubo::Constraint& constraint) {
  std::cout << label << ":\n";
  std::cout << "  sweeps   raw p  raw TTS99(ms)   polished p  pol TTS99(ms)\n";
  std::cout << "  " << std::string(56, '-') << '\n';
  for (std::size_t sweeps : {4, 16, 64, 256, 1024}) {
    const Row raw = measure(constraint, sweeps, /*polish=*/false);
    const Row polished = measure(constraint, sweeps, /*polish=*/true);
    std::cout << "  " << std::setw(6) << raw.sweeps << "  " << std::setw(6)
              << std::fixed << std::setprecision(3) << raw.per_read_success
              << "  ";
    print_tts(raw.tts99_ms);
    std::cout << "       " << std::setw(10) << std::setprecision(3)
              << polished.per_read_success << "  ";
    print_tts(polished.tts99_ms);
    std::cout << '\n';
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "E13: time-to-solution (99% confidence) vs sweep budget, "
               "256 reads, raw vs greedy-polished\n\n";
  run("palindrome(8)", strqubo::Palindrome{8});
  run("regex a[bc]+ length 6", strqubo::RegexMatch{"a[bc]+", 6});
  run("equality('hello')", strqubo::Equality{"hello"});
  std::cout << "Expected shape: raw success plateaus near (1 - 1/100)^n — "
               "the residual thermal flip rate\nat the default beta_cold = "
               "ln(100)/min|coeff| — so raw TTS99 grows with the budget and "
               "the\noptimum sits at the smallest budget that equilibrates. "
               "The greedy quench removes that\nceiling (p ~ 1.0), which is "
               "exactly why annealing pipelines end with a descent pass.\n";
  return 0;
}

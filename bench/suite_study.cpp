// E11 — benchmark-suite run: a generated mini SMT-LIB suite (the §2.1.1
// "library of benchmarks" idea) pushed end to end through the pipeline:
// generator -> .smt2 text -> parser -> compiler -> merged QUBO -> annealer
// -> verified model. Reports per-operation sat rate and mean latency.
//
// Expected shape: deterministic-witness operations (equality, concat,
// replace*, reverse) and structurally easy ones (palindrome, charAt,
// substring) are sat at ~1.0; the harder composites stay high but not
// necessarily perfect at fixed annealer effort.
#include <iomanip>
#include <iostream>
#include <map>

#include "anneal/simulated_annealer.hpp"
#include "smtlib/driver.hpp"
#include "util/stopwatch.hpp"
#include "workload/generator.hpp"
#include "workload/smt2_render.hpp"

int main() {
  using namespace qsmt;

  workload::GeneratorParams params;
  params.seed = 20250707;
  params.min_length = 2;
  params.max_length = 6;
  workload::Generator generator(params);

  anneal::SimulatedAnnealerParams anneal_params;
  anneal_params.num_reads = 48;
  anneal_params.num_sweeps = 384;
  anneal_params.seed = 1;
  const anneal::SimulatedAnnealer annealer(anneal_params);

  struct PerKind {
    std::size_t runs = 0;
    std::size_t sat = 0;
    double seconds = 0.0;
  };
  std::map<std::string, PerKind> stats;

  constexpr std::size_t kInstancesPerKind = 8;
  for (workload::Kind kind : workload::all_kinds()) {
    for (std::size_t i = 0; i < kInstancesPerKind; ++i) {
      const auto constraint = generator.next(kind);
      const auto script = workload::to_smt2(constraint);
      if (!script) continue;  // Includes has no .smt2 form.

      smtlib::SmtDriver driver(annealer);
      Stopwatch timer;
      const std::string out = driver.run_script(*script);
      auto& bucket = stats[workload::kind_name(kind)];
      bucket.seconds += timer.elapsed_seconds();
      ++bucket.runs;
      bucket.sat += out.find("sat\n") == 0 ? 1 : 0;
    }
  }

  std::cout << "E11: generated SMT-LIB benchmark suite through the full "
               "pipeline\n(" << kInstancesPerKind
            << " instances per operation, lengths 2-6, 48 reads x 384 "
               "sweeps)\n\n";
  std::cout << std::setw(18) << "operation" << std::setw(8) << "runs"
            << std::setw(10) << "sat_rate" << std::setw(12) << "mean_ms"
            << '\n';
  std::cout << std::string(48, '-') << '\n';
  std::size_t total_runs = 0;
  std::size_t total_sat = 0;
  for (const auto& [name, bucket] : stats) {
    std::cout << std::setw(18) << name << std::setw(8) << bucket.runs
              << std::setw(10) << std::fixed << std::setprecision(2)
              << (bucket.runs ? static_cast<double>(bucket.sat) /
                                    static_cast<double>(bucket.runs)
                              : 0.0)
              << std::setw(12) << std::setprecision(2)
              << (bucket.runs ? 1000.0 * bucket.seconds /
                                    static_cast<double>(bucket.runs)
                              : 0.0)
              << '\n';
    total_runs += bucket.runs;
    total_sat += bucket.sat;
  }
  std::cout << std::string(48, '-') << '\n';
  std::cout << std::setw(18) << "TOTAL" << std::setw(8) << total_runs
            << std::setw(10) << std::fixed << std::setprecision(2)
            << static_cast<double>(total_sat) /
                   static_cast<double>(total_runs)
            << '\n';
  return 0;
}

// Answer-cache bench: what alpha-equivalent memoization is worth on a
// duplicate-heavy stream (BENCH_answercache.json is the tracked baseline).
//
// Three passes over one seeded mixed-family workload:
//
//   1. cold — a cache-less service solves the distinct set: the per-job
//      cost every duplicate would otherwise pay;
//   2. warming — a cache-backed service solves the same distinct set under
//      the same seeds (all misses; fills the cache and pins that the miss
//      path's verdicts are byte-identical to the cache-less service's);
//   3. warm — the duplicate stream (every distinct case repeated) through
//      the warmed service: every job must be served from the cache, so the
//      measured per-job cost IS the lookup + witness remap + one classical
//      verification that replaces a full anneal.
//
// Headline metrics: warm-vs-cold mean-latency speedup (acceptance gate
// >= 10x in the JSON-writing full run), hit rate (must be 1.0 on the warm
// stream), remap+verify cost per served hit, and annealer reads avoided
// (cold-pass sampling attempts the warm stream never dispatched). --smoke
// shrinks the workload and gates >= 3x with the same byte-equality checks,
// seconds-scale for CI.
#include <cstddef>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "canon/answer_cache.hpp"
#include "service/service.hpp"
#include "strqubo/constraint.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace qsmt;

constexpr std::size_t kNumWorkers = 4;
constexpr std::uint64_t kSeed = 0xA25C;
constexpr std::size_t kNumReads = 64;

std::string random_word(Xoshiro256& rng, std::size_t min_len,
                        std::size_t max_len) {
  std::string word(min_len + rng.below(max_len - min_len + 1), 'a');
  for (char& c : word) c = static_cast<char>('a' + rng.below(5));
  return word;
}

/// One draw from op family `kind` (the differential-fuzz generator shapes).
strqubo::Constraint make_case(std::size_t kind, Xoshiro256& rng) {
  switch (kind) {
    case 0:
      return strqubo::Equality{random_word(rng, 2, 6)};
    case 1:
      return strqubo::Concat{random_word(rng, 1, 3), random_word(rng, 1, 3)};
    case 2: {
      const std::string text = random_word(rng, 3, 7);
      const std::size_t len =
          1 + rng.below(std::min<std::size_t>(3, text.size()));
      return strqubo::Includes{text,
                               text.substr(rng.below(text.size() - len + 1),
                                           len)};
    }
    case 3: {
      const std::size_t string_length = 2 + rng.below(5);
      return strqubo::Length{string_length, rng.below(string_length + 1)};
    }
    case 4:
      return strqubo::Replace{random_word(rng, 2, 6),
                              static_cast<char>('a' + rng.below(5)),
                              static_cast<char>('a' + rng.below(5))};
    case 5:
      return strqubo::Reverse{random_word(rng, 2, 6)};
    case 6:
      return strqubo::ReplaceAll{random_word(rng, 2, 6),
                                 static_cast<char>('a' + rng.below(5)),
                                 static_cast<char>('a' + rng.below(5))};
    case 7: {
      const std::size_t length = 3 + rng.below(3);
      return strqubo::SubstringMatch{length, random_word(rng, 1, 2)};
    }
    case 8: {
      const std::size_t length = 3 + rng.below(2);
      const std::string substring = random_word(rng, 1, 2);
      return strqubo::IndexOf{length, substring,
                              rng.below(length - substring.size() + 1)};
    }
    case 9: {
      const std::size_t length = 2 + rng.below(4);
      return strqubo::CharAt{length, rng.below(length),
                             static_cast<char>('a' + rng.below(5))};
    }
    default:
      return strqubo::Palindrome{1 + rng.below(5)};
  }
}

/// Single deterministic lane: witnesses are a function of (constraint,
/// seed), so the warming pass can demand byte-equality with the cache-less
/// reference and the warm stream with the warming pass.
service::ServiceOptions bench_service(
    std::shared_ptr<canon::AnswerCache> cache) {
  anneal::SimulatedAnnealerParams deep;
  deep.num_reads = kNumReads;
  deep.num_sweeps = 512;
  service::ServiceOptions options;
  options.num_workers = kNumWorkers;
  options.portfolio = {service::simulated_annealing_member("sa", deep)};
  options.answer_cache = std::move(cache);
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::size_t num_distinct = smoke ? 22 : 55;
  const std::size_t repeats = smoke ? 3 : 4;

  Xoshiro256 rng(kSeed);
  std::vector<strqubo::Constraint> distinct;
  distinct.reserve(num_distinct);
  for (std::size_t i = 0; i < num_distinct; ++i) {
    distinct.push_back(make_case(i % 11, rng));
  }
  // The duplicate stream: every distinct case, `repeats` times over —
  // the cross-job/cross-tenant duplication the cache exists for.
  std::vector<strqubo::Constraint> stream;
  stream.reserve(num_distinct * repeats);
  for (std::size_t r = 0; r < repeats; ++r) {
    for (const strqubo::Constraint& constraint : distinct) {
      stream.push_back(constraint);
    }
  }
  const std::size_t num_jobs = stream.size();

  service::JobOptions batch;
  batch.seed = kSeed;

  // Pass 1: cache-less reference over the distinct set.
  service::SolveService cold_service(bench_service(nullptr));
  Stopwatch cold_timer;
  const std::vector<service::JobResult> cold =
      cold_service.solve_constraints(distinct, batch);
  const double cold_seconds = cold_timer.elapsed_seconds();
  std::size_t cold_attempts = 0;
  for (const service::JobResult& result : cold) {
    cold_attempts += result.attempts;
  }

  // Pass 2: warming — same seeds through the cache-backed service.
  auto cache = std::make_shared<canon::AnswerCache>();
  service::SolveService warm_service(bench_service(cache));
  const std::vector<service::JobResult> warming =
      warm_service.solve_constraints(distinct, batch);

  std::size_t verdict_mismatches = 0;
  for (std::size_t i = 0; i < distinct.size(); ++i) {
    // Generator collisions inside the distinct set legitimately hit; every
    // genuine miss must be byte-identical to the cache-less reference.
    if (warming[i].status != cold[i].status) ++verdict_mismatches;
    if (!warming[i].answer_cache_hit &&
        (warming[i].text != cold[i].text ||
         warming[i].position != cold[i].position)) {
      ++verdict_mismatches;
    }
  }

  // Pass 3: the duplicate stream through the warmed cache. Different batch
  // seed: only the cache can reproduce the warming pass's witnesses.
  const std::uint64_t hits_before = warm_service.stats().answer_hits;
  service::JobOptions warm_batch;
  warm_batch.seed = kSeed ^ 0xFFFF;
  Stopwatch warm_timer;
  const std::vector<service::JobResult> warm =
      warm_service.solve_constraints(stream, warm_batch);
  const double warm_seconds = warm_timer.elapsed_seconds();

  // Every repeat of a distinct case must be byte-identical to its first
  // warm serving (the cache can only ever hand out one retained witness),
  // and every verdict must agree with the cold reference. Witness bytes are
  // NOT compared against the per-index warming result: generator collisions
  // inside the distinct set race their concurrent cold solves, and the
  // entry that survives is whichever verified insert landed last.
  std::size_t served = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const service::JobResult& first_serving = warm[i % num_distinct];
    const service::JobResult& result = warm[i];
    if (result.answer_cache_hit) ++served;
    if (result.status != cold[i % num_distinct].status) ++verdict_mismatches;
    if (result.status != first_serving.status ||
        result.text != first_serving.text ||
        result.position != first_serving.position) {
      ++verdict_mismatches;
    }
  }

  const service::SolveService::Stats stats = warm_service.stats();
  const double hit_rate =
      static_cast<double>(stats.answer_hits - hits_before) /
      static_cast<double>(num_jobs);
  const double cold_mean_ms = cold_seconds * 1e3 / num_distinct;
  const double warm_mean_ms = warm_seconds * 1e3 / num_jobs;
  const double speedup = cold_mean_ms / warm_mean_ms;
  // Every served hit skipped the sampling the cold pass paid for the same
  // constraint: attempts * reads per attempt.
  const std::size_t reads_avoided = cold_attempts * repeats * kNumReads;

  std::cout << std::fixed << std::setprecision(3);
  std::cout << "answer_cache_bench: " << num_distinct << " distinct cases x "
            << repeats << " repeats = " << num_jobs << " warm jobs, "
            << kNumWorkers << " workers" << (smoke ? " (smoke)" : "") << "\n";
  std::cout << "  cold solve: " << cold_seconds << " s (" << cold_mean_ms
            << " ms/job mean, " << cold_attempts << " attempts)\n";
  std::cout << "  warm serve: " << warm_seconds << " s (" << warm_mean_ms
            << " ms/job remap+verify, hit rate " << hit_rate << ")\n";
  std::cout << "  speedup: " << speedup << "x, reads avoided ~"
            << reads_avoided << ", fallbacks " << stats.answer_fallbacks
            << ", verdict mismatches " << verdict_mismatches << "\n";

  if (verdict_mismatches != 0) {
    std::cerr << "answer_cache_bench: FAIL " << verdict_mismatches
              << " warmed verdicts differ from the cold reference\n";
    return 1;
  }
  if (served != num_jobs || hit_rate < 1.0) {
    std::cerr << "answer_cache_bench: FAIL warm stream hit rate " << hit_rate
              << " < 1.0 (" << served << "/" << num_jobs << " served)\n";
    return 1;
  }

  const double gate_ratio = smoke ? 3.0 : 10.0;
  if (smoke) {
    if (speedup < gate_ratio) {
      std::cerr << "answer_cache_bench: FAIL smoke speedup " << speedup
                << "x < " << gate_ratio << "x\n";
      return 1;
    }
    std::cout << "answer_cache_bench: PASS (>= " << gate_ratio
              << "x warm-vs-cold, hit rate 1.0)\n";
    return 0;
  }

  const char* gate = speedup >= gate_ratio ? "pass" : "fail";
  std::ofstream out("BENCH_answercache.json");
  out << std::fixed << std::setprecision(4);
  out << "{\n"
      << "  \"num_distinct\": " << num_distinct << ",\n"
      << "  \"repeats\": " << repeats << ",\n"
      << "  \"num_warm_jobs\": " << num_jobs << ",\n"
      << "  \"num_workers\": " << kNumWorkers << ",\n"
      << "  \"gate\": \"" << gate << "\",\n"
      << "  \"cold_seconds\": " << cold_seconds << ",\n"
      << "  \"cold_mean_ms_per_job\": " << cold_mean_ms << ",\n"
      << "  \"cold_attempts\": " << cold_attempts << ",\n"
      << "  \"warm_seconds\": " << warm_seconds << ",\n"
      << "  \"warm_mean_ms_per_job\": " << warm_mean_ms << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"hit_rate\": " << hit_rate << ",\n"
      << "  \"reads_avoided\": " << reads_avoided << ",\n"
      << "  \"answer_fallbacks\": " << stats.answer_fallbacks << ",\n"
      << "  \"verdict_mismatches\": " << verdict_mismatches << "\n"
      << "}\n";

  if (speedup < gate_ratio) {
    std::cerr << "answer_cache_bench: FAIL speedup " << speedup << "x < "
              << gate_ratio << "x\n";
    return 1;
  }
  std::cout << "answer_cache_bench: PASS (>= " << gate_ratio
            << "x warm-vs-cold at hit rate 1.0)\n";
  return 0;
}

// Batched-substrate bench: reads/second of the bit-packed multi-replica
// sweep kernel against the scalar per-read loop it replaced, plus the
// cross-job fusion win of one sample_batched() invocation over per-job
// kernel launches. Writes BENCH_batch.json (in the CWD; run from the repo
// root to refresh the tracked baseline).
//
// Two sweeps:
//
//   1. Replica sweep — SimulatedAnnealer::sample at num_reads in
//      {1, 4, 8, 16, 32} with SweepMode::kScalar (the oracle, i.e. the
//      pre-substrate single-read path run per read) vs SweepMode::kBatched
//      on the string-QUBO workloads palindrome(8) and palindrome(16). Both
//      sides run single-threaded (omp_set_num_threads(1)): this bench
//      measures per-core substrate throughput — the scalar path would
//      otherwise hide SIMD wins behind read-level OpenMP parallelism that
//      both substrates share anyway (blocks parallelise exactly like
//      reads). Thread scaling is covered by hotpath/service benches.
//      Every (workload, reads) cell asserts full bit-identity of the two
//      sample sets before its timing is trusted.
//
//   2. Fusion sweep — B jobs x 16 replicas over the same adjacency,
//      fused into ONE sample_batched() call with B groups vs B separate
//      single-group calls (what the service would do without the
//      BatchAggregator). Group outputs are asserted identical between the
//      two shapes.
//
// Timings are min-of-reps (see bench/hotpath_bench.cpp for the rationale).
// The acceptance bar for the substrate is >= 3x reads/second over the
// scalar path at 16 replicas on a string-QUBO workload; the gate is
// enforced in full runs and skipped under --smoke (CI runs --smoke for
// wiring + identity coverage, not for timing fidelity).
#include <omp.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "anneal/batched_kernel.hpp"
#include "anneal/sample_set.hpp"
#include "anneal/simulated_annealer.hpp"
#include "qubo/adjacency.hpp"
#include "qubo/qubo_model.hpp"
#include "strqubo/builders.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace qsmt;

constexpr std::size_t kNumSweeps = 256;
constexpr std::uint64_t kSeed = 29;
const std::vector<std::size_t> kReplicaCounts = {1, 4, 8, 16, 32};
const std::vector<std::size_t> kFusionBatchSizes = {1, 2, 4, 8, 16};
constexpr std::size_t kFusionReplicas = 16;

struct Workload {
  std::string name;
  qubo::QuboAdjacency adjacency;
};

struct ReplicaCell {
  std::string workload;
  std::size_t num_variables = 0;
  std::size_t num_reads = 0;
  double scalar_seconds = 0.0;
  double batched_seconds = 0.0;
  double scalar_reads_per_second = 0.0;
  double batched_reads_per_second = 0.0;
  double speedup = 0.0;
  double best_energy = 0.0;
  bool bit_identical = false;
};

struct FusionCell {
  std::size_t batch_size = 0;
  double separate_seconds = 0.0;
  double fused_seconds = 0.0;
  double separate_reads_per_second = 0.0;
  double fused_reads_per_second = 0.0;
  double speedup = 0.0;
  bool bit_identical = false;
};

bool same_sample_sets(const anneal::SampleSet& a, const anneal::SampleSet& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].bits != b[i].bits) return false;
    // Bit-for-bit: the substrates replay the same arithmetic, so even the
    // floating-point energies must match exactly.
    if (std::memcmp(&a[i].energy, &b[i].energy, sizeof(double)) != 0) {
      return false;
    }
    if (a[i].num_occurrences != b[i].num_occurrences) return false;
  }
  return true;
}

anneal::SimulatedAnnealerParams base_params(std::size_t num_reads) {
  anneal::SimulatedAnnealerParams params;
  params.num_reads = num_reads;
  params.num_sweeps = kNumSweeps;
  params.seed = kSeed;
  return params;
}

/// Min-of-reps wall time of `fn()` (first call also returns its result via
/// the out param so identity checks reuse the timed work).
template <typename Fn, typename Result>
double time_min(std::size_t reps, Fn&& fn, Result& out) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    Stopwatch timer;
    Result result = fn();
    best = std::min(best, timer.elapsed_seconds());
    if (rep == 0) out = std::move(result);
  }
  return best;
}

ReplicaCell bench_replicas(const Workload& workload, std::size_t num_reads,
                           std::size_t reps) {
  ReplicaCell cell;
  cell.workload = workload.name;
  cell.num_variables = workload.adjacency.num_variables();
  cell.num_reads = num_reads;

  anneal::SimulatedAnnealerParams scalar_params = base_params(num_reads);
  scalar_params.sweep_mode = anneal::SweepMode::kScalar;
  const anneal::SimulatedAnnealer scalar(scalar_params);
  anneal::SimulatedAnnealerParams batched_params = base_params(num_reads);
  batched_params.sweep_mode = anneal::SweepMode::kBatched;
  const anneal::SimulatedAnnealer batched(batched_params);

  anneal::SampleSet scalar_set;
  cell.scalar_seconds = time_min(
      reps, [&] { return scalar.sample(workload.adjacency); }, scalar_set);
  anneal::SampleSet batched_set;
  cell.batched_seconds = time_min(
      reps, [&] { return batched.sample(workload.adjacency); }, batched_set);

  cell.scalar_reads_per_second =
      static_cast<double>(num_reads) / cell.scalar_seconds;
  cell.batched_reads_per_second =
      static_cast<double>(num_reads) / cell.batched_seconds;
  cell.speedup = cell.scalar_seconds / cell.batched_seconds;
  cell.best_energy = batched_set.lowest_energy();
  cell.bit_identical = same_sample_sets(scalar_set, batched_set);
  return cell;
}

FusionCell bench_fusion(const Workload& workload, std::size_t batch_size,
                        std::size_t reps) {
  FusionCell cell;
  cell.batch_size = batch_size;

  const anneal::SimulatedAnnealerParams params = base_params(kFusionReplicas);
  std::vector<anneal::BatchedGroup> groups(batch_size);
  for (std::size_t j = 0; j < batch_size; ++j) {
    groups[j].seed = kSeed + 100 * (j + 1);
    groups[j].num_replicas = kFusionReplicas;
  }

  // Per-job shape: one kernel launch per group, the way the service runs
  // jobs that the aggregator could not fuse.
  std::vector<anneal::SampleSet> separate;
  cell.separate_seconds = time_min(
      reps,
      [&] {
        std::vector<anneal::SampleSet> sets;
        sets.reserve(batch_size);
        for (std::size_t j = 0; j < batch_size; ++j) {
          auto one = anneal::sample_batched(workload.adjacency, params,
                                            {&groups[j], 1});
          sets.push_back(std::move(one.front()));
        }
        return sets;
      },
      separate);

  // Fused shape: every group in one invocation (one packing pass, one
  // sweep loop, shared CSR traversal).
  std::vector<anneal::SampleSet> fused;
  cell.fused_seconds = time_min(
      reps,
      [&] { return anneal::sample_batched(workload.adjacency, params, groups); },
      fused);

  const double total_reads =
      static_cast<double>(batch_size) * static_cast<double>(kFusionReplicas);
  cell.separate_reads_per_second = total_reads / cell.separate_seconds;
  cell.fused_reads_per_second = total_reads / cell.fused_seconds;
  cell.speedup = cell.separate_seconds / cell.fused_seconds;
  cell.bit_identical = separate.size() == fused.size();
  for (std::size_t j = 0; cell.bit_identical && j < fused.size(); ++j) {
    cell.bit_identical = same_sample_sets(separate[j], fused[j]);
  }
  return cell;
}

void write_json(const std::vector<ReplicaCell>& replica_sweep,
                const std::vector<FusionCell>& fusion_sweep, bool smoke,
                std::size_t reps, double gate_speedup) {
  std::ofstream out("BENCH_batch.json");
  out << std::fixed << std::setprecision(4);
  out << "{\n  \"config\": {\"num_sweeps\": " << kNumSweeps
      << ", \"reps\": " << reps << ", \"seed\": " << kSeed
      << ", \"smoke\": " << (smoke ? "true" : "false")
      << ", \"avx2\": " << (anneal::batched_avx2_enabled() ? "true" : "false")
      << ", \"threads\": 1},\n";
  out << "  \"replica_sweep\": [\n";
  for (std::size_t i = 0; i < replica_sweep.size(); ++i) {
    const ReplicaCell& c = replica_sweep[i];
    out << "    {\"workload\": \"" << c.workload << "\""
        << ", \"num_variables\": " << c.num_variables
        << ", \"num_reads\": " << c.num_reads
        << ",\n     \"scalar_seconds\": " << c.scalar_seconds
        << ", \"batched_seconds\": " << c.batched_seconds
        << ",\n     \"scalar_reads_per_second\": " << c.scalar_reads_per_second
        << ", \"batched_reads_per_second\": " << c.batched_reads_per_second
        << ",\n     \"speedup\": " << c.speedup
        << ", \"best_energy\": " << c.best_energy << ", \"bit_identical\": "
        << (c.bit_identical ? "true" : "false") << "}"
        << (i + 1 < replica_sweep.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"fusion_sweep\": [\n";
  for (std::size_t i = 0; i < fusion_sweep.size(); ++i) {
    const FusionCell& c = fusion_sweep[i];
    out << "    {\"batch_size\": " << c.batch_size
        << ", \"group_replicas\": " << kFusionReplicas
        << ",\n     \"separate_seconds\": " << c.separate_seconds
        << ", \"fused_seconds\": " << c.fused_seconds
        << ",\n     \"separate_reads_per_second\": "
        << c.separate_reads_per_second
        << ", \"fused_reads_per_second\": " << c.fused_reads_per_second
        << ",\n     \"speedup\": " << c.speedup << ", \"bit_identical\": "
        << (c.bit_identical ? "true" : "false") << "}"
        << (i + 1 < fusion_sweep.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"gate_speedup_at_16_replicas\": " << gate_speedup
      << ",\n  \"gate_threshold\": 3.0\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const std::size_t reps = smoke ? 2 : 7;
  omp_set_num_threads(1);

  std::vector<Workload> workloads;
  workloads.push_back(
      {"palindrome_8", qubo::QuboAdjacency(strqubo::build_palindrome(8))});
  workloads.push_back(
      {"palindrome_16", qubo::QuboAdjacency(strqubo::build_palindrome(16))});

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "batch_bench: sweeps=" << kNumSweeps << " reps=" << reps
            << " avx2=" << (anneal::batched_avx2_enabled() ? "on" : "off")
            << (smoke ? " (smoke)" : "") << "\n";

  bool all_identical = true;
  double gate_speedup = 0.0;
  std::vector<ReplicaCell> replica_sweep;
  for (const Workload& workload : workloads) {
    for (std::size_t num_reads : kReplicaCounts) {
      ReplicaCell cell = bench_replicas(workload, num_reads, reps);
      all_identical = all_identical && cell.bit_identical;
      if (num_reads == 16) gate_speedup = std::max(gate_speedup, cell.speedup);
      std::cout << "  " << cell.workload << " reads=" << cell.num_reads
                << ": scalar " << cell.scalar_reads_per_second
                << " reads/s, batched " << cell.batched_reads_per_second
                << " reads/s (" << cell.speedup << "x, "
                << (cell.bit_identical ? "bit-identical" : "MISMATCH")
                << ")\n";
      replica_sweep.push_back(std::move(cell));
    }
  }

  std::vector<FusionCell> fusion_sweep;
  for (std::size_t batch_size : kFusionBatchSizes) {
    FusionCell cell = bench_fusion(workloads.front(), batch_size, reps);
    all_identical = all_identical && cell.bit_identical;
    std::cout << "  fusion batch=" << cell.batch_size << "x"
              << kFusionReplicas << ": separate "
              << cell.separate_reads_per_second << " reads/s, fused "
              << cell.fused_reads_per_second << " reads/s (" << cell.speedup
              << "x, " << (cell.bit_identical ? "bit-identical" : "MISMATCH")
              << ")\n";
    fusion_sweep.push_back(std::move(cell));
  }

  write_json(replica_sweep, fusion_sweep, smoke, reps, gate_speedup);

  // Identity is non-negotiable in every mode: a fast-but-different kernel
  // would silently change solver verdicts.
  if (!all_identical) {
    std::cerr << "batch_bench: FAIL batched/scalar outputs diverged\n";
    return 1;
  }
  std::cout << "  speedup at 16 replicas: " << gate_speedup << "x\n";
  if (!smoke && gate_speedup < 3.0) {
    std::cerr << "batch_bench: FAIL speedup " << gate_speedup << " < 3.0\n";
    return 1;
  }
  std::cout << "batch_bench: PASS ("
            << (smoke ? "identity only" : ">= 3x at 16 replicas") << ")\n";
  return 0;
}
